package graphchi

import (
	"os"
	"path/filepath"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
)

func TestMatchesInMemoryLister(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.ErdosRenyi(500, 4000, seed)
		want := centralized.CountTriangles(g)
		res, err := CountTriangles(g, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Triangles != want {
			t.Errorf("seed=%d: graphchi=%d in-memory=%d", seed, res.Triangles, want)
		}
	}
}

func TestMatchesOnSkewedGraph(t *testing.T) {
	g := gen.ChungLu(3000, 15000, 1.6, 7)
	want := centralized.CountTriangles(g)
	res, err := CountTriangles(g, Options{Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != want {
		t.Fatalf("graphchi=%d in-memory=%d", res.Triangles, want)
	}
}

func TestShardCountInvariance(t *testing.T) {
	g := gen.ChungLu(1000, 5000, 1.8, 3)
	want := centralized.CountTriangles(g)
	for _, p := range []int{1, 2, 3, 8, 16} {
		res, err := CountTriangles(g, Options{Shards: p})
		if err != nil {
			t.Fatalf("shards=%d: %v", p, err)
		}
		if res.Triangles != want {
			t.Errorf("shards=%d: %d, want %d", p, res.Triangles, want)
		}
	}
}

func TestKnownCounts(t *testing.T) {
	var k5e [][2]graph.VertexID
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k5e = append(k5e, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(j)})
		}
	}
	k5 := graph.FromEdges(5, k5e)
	res, err := CountTriangles(k5, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 10 {
		t.Fatalf("K5 triangles = %d, want 10", res.Triangles)
	}
	c4 := graph.FromEdges(4, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	res, err = CountTriangles(c4, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 {
		t.Fatalf("C4 triangles = %d, want 0", res.Triangles)
	}
}

func TestActuallyTouchesDisk(t *testing.T) {
	dir := t.TempDir()
	g := gen.ErdosRenyi(800, 6000, 2)
	res, err := CountTriangles(g, Options{Shards: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil || len(files) != 4 {
		t.Fatalf("expected 4 shard files, got %v (%v)", files, err)
	}
	var onDisk int64
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	if onDisk != res.Stats.BytesWritten {
		t.Errorf("BytesWritten=%d but shards hold %d bytes", res.Stats.BytesWritten, onDisk)
	}
	if res.Stats.BytesRead < res.Stats.BytesWritten {
		t.Errorf("read %d < wrote %d: the sweep must re-read every shard at least once",
			res.Stats.BytesRead, res.Stats.BytesWritten)
	}
	if res.Stats.ShardLoads < 4 {
		t.Errorf("only %d shard loads for 4 shards", res.Stats.ShardLoads)
	}
}

func TestWindowBoundedMemory(t *testing.T) {
	// More shards = smaller peak window.
	g := gen.ChungLu(4000, 20000, 1.8, 5)
	few, err := CountTriangles(g, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	many, err := CountTriangles(g, Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if many.Stats.PeakWindowMiB >= few.Stats.PeakWindowMiB {
		t.Errorf("peak window did not shrink with more shards: 2->%.3fMiB 16->%.3fMiB",
			few.Stats.PeakWindowMiB, many.Stats.PeakWindowMiB)
	}
	// But more shards = more repeated reads (the out-of-core trade-off).
	if many.Stats.BytesRead <= few.Stats.BytesRead {
		t.Errorf("more shards should re-read more: 2->%d bytes 16->%d bytes",
			few.Stats.BytesRead, many.Stats.BytesRead)
	}
}

func TestEmptyAndNil(t *testing.T) {
	if _, err := CountTriangles(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	empty := graph.NewBuilder(10).Build()
	res, err := CountTriangles(empty, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 {
		t.Errorf("triangles in edgeless graph = %d", res.Triangles)
	}
}

func TestIntersectCount(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int64
	}{
		{nil, nil, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 2},
		{[]int32{1, 5, 9}, []int32{2, 6, 10}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := intersectCount(c.a, c.b); got != c.want {
			t.Errorf("intersect(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkGraphChiTriangles(b *testing.B) {
	g := gen.ChungLu(20000, 100000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountTriangles(g, Options{Shards: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
