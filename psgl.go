// Package psgl is a from-scratch Go implementation of PSgL, the parallel
// subgraph listing framework of Shao, Cui, Chen, Ma, Yao & Xu (SIGMOD 2014):
// "Parallel Subgraph Listing in a Large-Scale Graph".
//
// PSgL enumerates every instance of a small unlabeled pattern graph in a
// large unlabeled data graph by pure graph traversal — no join operator. The
// data graph is partitioned across BSP workers; partial subgraph instances
// are expanded vertex by vertex and routed between workers by a distribution
// strategy; a degree-based vertex ordering breaks pattern automorphisms so
// every instance is found exactly once; and a bloom-filter edge index prunes
// invalid partial instances before they are communicated.
//
// # Quick start
//
//	g := psgl.GenerateChungLu(100_000, 500_000, 1.8, 42) // or LoadEdgeList
//	res, err := psgl.List(g, psgl.Square(), psgl.NewOptions())
//	if err != nil { ... }
//	fmt.Println(res.Count)
//
// The package also exposes the systems the paper evaluates against —
// the one-round multiway join of Afrati et al., an SGIA-MR-style iterative
// edge join, a PowerGraph-style fixed-order one-hop engine, and centralized
// enumeration — so every table and figure of the paper's evaluation can be
// regenerated (see cmd/psgl-bench and EXPERIMENTS.md).
package psgl

import (
	"context"
	"fmt"
	"io"

	"psgl/internal/afrati"
	"psgl/internal/bsp"
	"psgl/internal/centralized"
	"psgl/internal/core"
	"psgl/internal/delta"
	"psgl/internal/esu"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/graphchi"
	"psgl/internal/obs"
	"psgl/internal/onehop"
	"psgl/internal/pattern"
	"psgl/internal/serve"
	"psgl/internal/sgia"
	"psgl/internal/stream"
	"strconv"
	"strings"
)

// Core graph types.
type (
	// Graph is an immutable undirected simple data graph in CSR form.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// VertexID identifies a data-graph vertex.
	VertexID = graph.VertexID
	// Pattern is a small connected pattern graph, optionally carrying a
	// symmetry-breaking partial order.
	Pattern = pattern.Pattern
)

// PSgL engine configuration and results.
type (
	// Options configures a PSgL run; see NewOptions for defaults.
	Options = core.Options
	// Result is the outcome of a run: instance count, optional instance
	// mappings, and run statistics.
	Result = core.Result
	// Stats carries the run metrics (Gpsi counts, pruning breakdown,
	// per-worker load, makespan).
	Stats = core.Stats
	// Strategy selects the partial-subgraph-instance distribution strategy.
	Strategy = core.Strategy
)

// Distribution strategies (Section 5.1 of the paper).
const (
	StrategyRandom        = core.StrategyRandom
	StrategyRoulette      = core.StrategyRoulette
	StrategyWorkloadAware = core.StrategyWorkloadAware
)

// ErrOutOfMemory reports that a run exceeded Options.MaxIntermediate.
var ErrOutOfMemory = core.ErrOutOfMemory

// NewOptions returns the default configuration: 4 workers, workload-aware
// distribution with α = 0.5, bloom edge index at 10 bits/edge, automatic
// initial-pattern-vertex selection.
func NewOptions() Options { return core.NewOptions() }

// List enumerates all instances of p in g with the PSgL engine.
func List(g *Graph, p *Pattern, opts Options) (*Result, error) {
	return core.Run(g, p, opts)
}

// ListContext is List with cancellation: the run stops at the next message
// boundary once ctx is done, and ctx deadlines bound the exchange's network
// operations. Combined with the Options fault-tolerance fields (StepTimeout,
// Retry, CheckpointEvery/CheckpointStore, ResumeFrom, MaxRecoveries) it is
// the entry point for long-running, failure-prone enumerations.
func ListContext(ctx context.Context, g *Graph, p *Pattern, opts Options) (*Result, error) {
	return core.RunContext(ctx, g, p, opts)
}

// Count is List without instance collection, returning only the number of
// instances.
func Count(g *Graph, p *Pattern, opts Options) (int64, error) {
	opts.Collect = false
	res, err := core.Run(g, p, opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// NewTCPExchange returns a BSP message exchange that routes every
// inter-worker batch through loopback TCP with gob encoding; assign it to
// Options.Exchange for distributed-execution realism.
func NewTCPExchange() bsp.ExchangeFactory { return bsp.NewTCPExchangeFactory() }

// Fault tolerance (the Giraph-style barrier checkpointing the paper's
// substrate provides, Section 6). See Options for how these compose.
type (
	// ExchangeFactory builds a BSP message exchange; assign one to
	// Options.Exchange.
	ExchangeFactory = bsp.ExchangeFactory
	// RetryPolicy bounds exponential backoff around superstep exchanges.
	RetryPolicy = bsp.RetryPolicy
	// FaultConfig parameterizes the deterministic fault-injection exchange.
	FaultConfig = bsp.FaultConfig
	// CheckpointStore persists barrier snapshots for recovery and resume.
	CheckpointStore = bsp.CheckpointStore
	// TCPConfig tunes the TCP exchange's dial/setup/frame deadlines.
	TCPConfig = bsp.TCPConfig
)

// NewTCPExchangeWithConfig is NewTCPExchange with explicit deadlines.
func NewTCPExchangeWithConfig(cfg TCPConfig) ExchangeFactory {
	return bsp.NewTCPExchangeFactoryWithConfig(cfg)
}

// NewFaultyExchange wraps inner (nil = the in-process exchange) in a
// deterministic fault injector that drops, delays, or errors whole superstep
// batches — pair it with Options.Retry and checkpointing to test recovery.
func NewFaultyExchange(inner ExchangeFactory, fc FaultConfig) ExchangeFactory {
	return bsp.NewFaultyExchangeFactory(inner, fc)
}

// NewMemCheckpointStore returns an in-memory checkpoint store for in-run
// recovery within a single process.
func NewMemCheckpointStore() CheckpointStore { return bsp.NewMemCheckpointStore() }

// NewFileCheckpointStore returns a directory-backed checkpoint store whose
// snapshots survive the process; pass it as Options.ResumeFrom in a later
// run to continue a failed enumeration from its last barrier.
func NewFileCheckpointStore(dir string) (CheckpointStore, error) {
	return bsp.NewFileCheckpointStore(dir)
}

// ErrCorruptCheckpoint reports a stored snapshot that failed integrity
// verification (bad magic, checksum mismatch, undecodable payload); surfaced
// wrapped from runs using Options.ResumeFrom, distinguishable with errors.Is.
var ErrCorruptCheckpoint = bsp.ErrCorruptCheckpoint

// Observability (internal/obs): per-superstep timings, transport volume,
// checkpoint/recovery trace, end-of-run report. Attach an Observer to
// Options.Observer; a nil Observer is a no-op, and with the default NopSink
// the engine's per-message hot path is untouched (no hooks run per message).
type (
	// Observer collects one run's metrics and forwards trace events to a
	// Sink. Its logical counters (Counters, worker loads) match Stats
	// bit-for-bit on clean, recovered, and resumed runs alike.
	Observer = obs.Observer
	// Sink receives structured trace events.
	Sink = obs.Sink
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// ObsSnapshot is a point-in-time copy of an Observer's counters.
	ObsSnapshot = obs.Snapshot
)

// NewObserver returns an Observer emitting to sink; nil means the no-op sink.
func NewObserver(sink Sink) *Observer { return obs.New(sink) }

// NewRingSink returns an in-memory sink retaining the last n events.
func NewRingSink(n int) *obs.Ring { return obs.NewRing(n) }

// NewJSONLSink returns a sink writing one JSON event per line to w — the
// trace-file format behind the CLIs' -trace flag.
func NewJSONLSink(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// ServeDebug starts the observability debug server (expvar counters at
// /debug/vars, net/http/pprof at /debug/pprof/, the observer snapshot at
// /debug/obs) on addr and returns the bound address; the CLIs' -pprof-addr
// flag calls this.
func ServeDebug(addr string, o *Observer) (string, error) { return obs.ServeDebug(addr, o) }

// Graph construction.

// NewGraphBuilder creates a builder for a data graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a data graph from an explicit edge list.
func GraphFromEdges(n int, edges [][2]VertexID) *Graph { return graph.FromEdges(n, edges) }

// LoadEdgeList parses a SNAP/KONECT-style whitespace edge list.
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// SaveEdgeList writes g in the format LoadEdgeList parses.
func SaveEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Synthetic graph generators (deterministic per seed).

// GenerateErdosRenyi returns a G(n, m) random graph.
func GenerateErdosRenyi(n int, m int64, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// GenerateChungLu returns a power-law graph with ~m edges and degree
// exponent gamma (lower = more skewed).
func GenerateChungLu(n int, m int64, gamma float64, seed int64) *Graph {
	return gen.ChungLu(n, m, gamma, seed)
}

// GenerateBarabasiAlbert returns a preferential-attachment graph with k
// edges per new vertex.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph { return gen.BarabasiAlbert(n, k, seed) }

// GenerateRMAT returns an R-MAT graph with 2^scale vertices and ~m edges
// using the classic (0.57, 0.19, 0.19, 0.05) quadrant probabilities.
func GenerateRMAT(scale int, m int64, seed int64) *Graph {
	return gen.RMAT(scale, m, 0.57, 0.19, 0.19, 0.05, seed)
}

// GenerateFromSpec parses a compact generator spec and builds the graph:
//
//	"er:N:M"            Erdős–Rényi G(N, M)
//	"chunglu:N:M:GAMMA" power law with exponent GAMMA
//	"ba:N:K"            Barabási–Albert, K edges per vertex
//	"rmat:SCALE:M"      R-MAT with 2^SCALE vertices
//
// This is the format the cmd/psgl and cmd/psgl-gen tools accept.
func GenerateFromSpec(spec string, seed int64) (*Graph, error) {
	parts := strings.Split(spec, ":")
	bad := func() (*Graph, error) {
		return nil, fmt.Errorf(`psgl: bad generator spec %q (want "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", or "rmat:SCALE:M")`, spec)
	}
	nums := make([]int64, 0, 3)
	for _, s := range parts[1:] {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			if parts[0] == "chunglu" && len(nums) == 2 {
				break // third field is the float gamma
			}
			return bad()
		}
		nums = append(nums, v)
	}
	for _, v := range nums {
		if v <= 0 {
			return nil, fmt.Errorf("psgl: bad generator spec %q: sizes must be positive", spec)
		}
	}
	switch parts[0] {
	case "er":
		if len(parts) != 3 || len(nums) != 2 {
			return bad()
		}
		return GenerateErdosRenyi(int(nums[0]), nums[1], seed), nil
	case "chunglu":
		if len(parts) != 4 || len(nums) < 2 {
			return bad()
		}
		gamma, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return bad()
		}
		if gamma <= 0 {
			return nil, fmt.Errorf("psgl: bad generator spec %q: gamma must be positive", spec)
		}
		return GenerateChungLu(int(nums[0]), nums[1], gamma, seed), nil
	case "ba":
		if len(parts) != 3 || len(nums) != 2 {
			return bad()
		}
		return GenerateBarabasiAlbert(int(nums[0]), int(nums[1]), seed), nil
	case "rmat":
		if len(parts) != 3 || len(nums) != 2 {
			return bad()
		}
		if nums[0] > 30 {
			return nil, fmt.Errorf("psgl: bad generator spec %q: rmat scale must be <= 30", spec)
		}
		return GenerateRMAT(int(nums[0]), nums[1], seed), nil
	}
	return bad()
}

// Pattern construction.

// NewPattern builds a connected pattern graph from an edge list over
// vertices 0..n-1. Symmetry is broken automatically by List/Count, so the
// pattern can be supplied without a partial order.
func NewPattern(name string, n int, edges [][2]int) (*Pattern, error) {
	return pattern.New(name, n, edges)
}

// Catalog patterns (Figure 4 of the paper), automorphisms already broken.

// Triangle returns PG1, the 3-clique.
func Triangle() *Pattern { return pattern.PG1() }

// Square returns PG2, the 4-cycle of Figure 1.
func Square() *Pattern { return pattern.PG2() }

// Diamond returns PG3, a 4-cycle with one chord.
func Diamond() *Pattern { return pattern.PG3() }

// FourClique returns PG4, the complete graph on 4 vertices.
func FourClique() *Pattern { return pattern.PG4() }

// House returns PG5, the 5-vertex house graph (square with a roof).
func House() *Pattern { return pattern.PG5() }

// Cycle returns the k-cycle (k >= 3).
func Cycle(k int) *Pattern { return pattern.Cycle(k) }

// Clique returns the complete graph on k vertices (k >= 2).
func Clique(k int) *Pattern { return pattern.Clique(k) }

// Path returns the simple path on k vertices (k >= 2).
func Path(k int) *Pattern { return pattern.Path(k) }

// Star returns the star with k leaves.
func Star(k int) *Pattern { return pattern.Star(k) }

// PatternByName resolves "pg1".."pg5", "triangle", "square", "diamond",
// "house", and parameterized "cycleN"/"cliqueN"/"pathN"/"starN".
func PatternByName(name string) (*Pattern, error) { return pattern.ByName(name) }

// ParsePattern parses the pattern DSL the query service and CLIs accept:
// every PatternByName spelling plus "cycle(4)", "clique(4)", "path(3)",
// "star(5)", and explicit edge lists like "edges(0-1,1-2,2-0)". Whitespace
// and case are ignored. Patterns that are rejected by the engine (self
// loops, disconnected, too many vertices) or too symmetric to plan fail here
// with a descriptive error.
func ParsePattern(src string) (*Pattern, error) { return pattern.Parse(src) }

// Resident query service (cmd/psgl-server): the data graph is loaded once
// and queries in the pattern DSL are answered over HTTP with per-pattern
// plan caching, admission control, deadlines, and NDJSON result streaming.
type (
	// Server is the resident subgraph-listing query service.
	Server = serve.Server
	// ServerConfig tunes a Server (concurrency, queueing, deadlines, tracing).
	ServerConfig = serve.Config
	// ServerStats is the /stats document.
	ServerStats = serve.StatsResponse
)

// NewServer builds a resident query service over g. Mount Handler on an
// http.Server and call Drain on shutdown.
func NewServer(g *Graph, cfg ServerConfig) (*Server, error) { return serve.New(g, cfg) }

// Remote worker plane (cmd/psgl-worker): with ServerConfig.Plane set, the
// server coordinates a fleet of worker processes — registration with
// fingerprint checks and generation numbers, heartbeat liveness with
// missed-beat eviction, hedged query dispatch with failover, and a
// 503-with-Retry-After degraded mode below quorum.
type (
	// PlaneConfig enables and tunes the coordinator's worker plane.
	PlaneConfig = serve.PlaneConfig
	// RemoteWorker is a running worker process runtime.
	RemoteWorker = serve.Worker
	// RemoteWorkerConfig configures one worker (ID, coordinator URL,
	// listen address, embedded server tuning).
	RemoteWorkerConfig = serve.WorkerConfig
)

// StartRemoteWorker loads the worker's execution endpoint over g, joins the
// coordinator, and starts heartbeating.
func StartRemoteWorker(g *Graph, cfg RemoteWorkerConfig) (*RemoteWorker, error) {
	return serve.StartWorker(g, cfg)
}

// Dynamic graphs (internal/graph.Overlay + internal/delta): the CSR data
// graph is immutable, so mutation is layered on top — an Overlay records
// add/remove batches against a base graph and materializes immutable
// snapshots, and ListDelta computes exactly the embeddings a batch gained
// and lost without re-enumerating the whole graph. The same machinery backs
// the query service's POST /update and POST /subscribe endpoints.
type (
	// GraphOverlay is a versioned mutable edge-set overlay on an immutable
	// base graph: batches apply atomically, every accepted batch advances the
	// mutation epoch, and an incremental order-independent edge fingerprint
	// tracks the current edge set.
	GraphOverlay = graph.Overlay
	// MutationBatch is one atomic set of edge additions and removals.
	MutationBatch = graph.Batch
	// MutationResult reports a batch's effective additions, removals, noops,
	// and the epoch it produced.
	MutationResult = graph.BatchResult
	// DeltaOptions tunes a delta enumeration; the zero value is ready to use.
	DeltaOptions = delta.Options
	// DeltaResult carries the gained/lost counts, the optional embedding
	// lists, and the run statistics of one delta enumeration.
	DeltaResult = delta.Result
)

// NewGraphOverlay starts an overlay with base's edge set at epoch 0.
func NewGraphOverlay(base *Graph) *GraphOverlay { return graph.NewOverlay(base) }

// ListDelta computes exactly the embeddings of p gained and lost between old
// and new, where new differs from old by the given added and removed edges
// (the values a GraphOverlay.ApplyBatch result reports). The identity
// count(old) + gained - lost == count(new) holds for every pattern.
func ListDelta(ctx context.Context, old, new *Graph, added, removed [][2]VertexID, p *Pattern, opts DeltaOptions) (*DeltaResult, error) {
	return delta.Enumerate(ctx, old, new, added, removed, p, opts)
}

// Labeled subgraph matching (the generalization the paper's related-work
// section describes: listing is matching with uniform labels). Attach labels
// to a pattern with Pattern.WithLabels and to the data graph with
// Options.DataLabels; candidates must then match labels, and symmetry
// breaking respects them.

// CountCentralizedLabeled is the labeled-matching oracle.
func CountCentralizedLabeled(g *Graph, p *Pattern, dataLabels []int32) int64 {
	return centralized.CountInstancesLabeled(p.BreakAutomorphisms(), g, dataLabels)
}

// Reference implementations (the systems the paper compares against).

// CountCentralized enumerates instances on a single thread (the correctness
// oracle; the GraphChi stand-in of Table 3). Like List, it breaks the
// pattern's automorphisms first, so each instance is counted exactly once.
func CountCentralized(g *Graph, p *Pattern) int64 {
	return centralized.CountInstances(p.BreakAutomorphisms(), g)
}

// CountTriangles lists triangles with the ordered-intersection method of
// Chiba–Nishizeki; the fastest exact single-machine triangle counter here.
func CountTriangles(g *Graph) int64 { return centralized.CountTriangles(g) }

// CountTrianglesOutOfCore counts triangles with the GraphChi-style sharded
// out-of-core pipeline (disk shards, bounded memory window).
func CountTrianglesOutOfCore(g *Graph, shards int) (int64, error) {
	res, err := graphchi.CountTriangles(g, graphchi.Options{Shards: shards})
	if err != nil {
		return 0, err
	}
	return res.Triangles, nil
}

// EstimateTriangles runs the one-pass wedge-sampling stream estimator
// (related-work family of Section 2: bounded memory, approximate count, no
// instance listing) with k wedge samples.
func EstimateTriangles(g *Graph, k int, seed int64) (float64, error) {
	est, err := stream.EstimateTriangles(g, k, seed)
	if err != nil {
		return 0, err
	}
	return est.Estimate, nil
}

// MotifCensus counts every pattern in patterns over g with the PSgL engine,
// returning counts keyed by pattern name — the motif-profile workload the
// paper's introduction motivates. Patterns are processed sequentially, each
// with the full worker pool.
//
// For the complementary workload — count every connected k-vertex shape at
// once, without naming the patterns up front — use Census, which runs the
// dedicated ESU engine instead of one PSgL listing per pattern.
func MotifCensus(g *Graph, patterns []*Pattern, opts Options) (map[string]int64, error) {
	out := make(map[string]int64, len(patterns))
	for _, p := range patterns {
		n, err := Count(g, p, opts)
		if err != nil {
			return nil, fmt.Errorf("motif %s: %w", p.Name(), err)
		}
		out[p.Name()] = n
	}
	return out, nil
}

// Motif census engine (internal/esu): where List answers "list all embeddings
// of this one pattern", Census answers "count every connected k-vertex
// subgraph shape" — Wernicke's ESU algorithm parallelized per root vertex
// over a bitset adjacency, with a sharded canonical-form memo cache shared
// across workers. The same engine backs the query service's census(k) verb.
type (
	// CensusOptions tunes a census run; the zero value is ready to use.
	CensusOptions = esu.Options
	// CensusResult is a census outcome: total subgraphs, the motif histogram,
	// memo-cache hit counts, and wall time.
	CensusResult = esu.Result
	// MotifClass is one isomorphism class of the census histogram.
	MotifClass = esu.MotifCount
	// CensusCanonCache is the sharded canonical-form memo cache; build one
	// with NewCensusCanonCache and pass it via CensusOptions.Cache to warm
	// repeat censuses of the same k.
	CensusCanonCache = esu.CanonCache
)

// MinCensusK and MaxCensusK bound the census subgraph size k.
const (
	MinCensusK = esu.MinK
	MaxCensusK = esu.MaxK
)

// ErrGraphTooLarge reports a graph exceeding the census engine's dense
// bitset-adjacency vertex cap (the CSR listing engine has no such cap);
// distinguishable with errors.Is.
var ErrGraphTooLarge = esu.ErrGraphTooLarge

// Census counts every connected induced k-vertex subgraph of g, classified
// into isomorphism classes — the motif histogram.
func Census(g *Graph, k int, opts CensusOptions) (*CensusResult, error) {
	return esu.Count(g, k, opts)
}

// CensusContext is Census with cancellation: the enumeration stops at the
// next root-vertex boundary once ctx is done.
func CensusContext(ctx context.Context, g *Graph, k int, opts CensusOptions) (*CensusResult, error) {
	return esu.CountContext(ctx, g, k, opts)
}

// NewCensusCanonCache builds an empty canonical-form memo cache for size-k
// censuses, shareable across concurrent runs.
func NewCensusCanonCache(k int) *CensusCanonCache { return esu.NewCanonCache(k) }

// ParseCensus recognizes the DSL's census verb, "census(k)". ok reports
// whether src is a census expression at all — when false, parse src as a
// pattern instead; when true, err still flags a malformed or out-of-range k.
// CLIs that accept both query forms in one argument try this first.
func ParseCensus(src string) (k int, ok bool, err error) { return pattern.ParseCensus(src) }

// VerifyCensus cross-checks res against the naive centralized census oracle —
// an independent enumerator and canonicalizer — and reports the first
// discrepancy. The two engines may pick different canonical representatives
// for a class, so comparison happens after mapping res's class codes through
// the oracle's canonical form.
func VerifyCensus(g *Graph, res *CensusResult) error {
	wantHist, wantTotal := centralized.MotifCensus(g, res.K)
	if res.Subgraphs != wantTotal {
		return fmt.Errorf("psgl: census k=%d counted %d subgraphs, oracle counted %d",
			res.K, res.Subgraphs, wantTotal)
	}
	got := make(map[uint32]int64, len(res.Classes))
	for _, c := range res.Classes {
		got[centralized.CanonicalSubgraphCode(res.K, c.Code)] += c.Count
	}
	if len(got) != len(wantHist) {
		return fmt.Errorf("psgl: census k=%d found %d motif classes, oracle found %d",
			res.K, len(got), len(wantHist))
	}
	for code, want := range wantHist {
		if got[code] != want {
			return fmt.Errorf("psgl: census k=%d class %#x counted %d, oracle counted %d",
				res.K, code, got[code], want)
		}
	}
	return nil
}

// AfratiOptions configures CountAfrati.
type AfratiOptions = afrati.Options

// CountAfrati counts instances with the one-round multiway MapReduce join of
// Afrati et al. (ICDE 2013).
func CountAfrati(g *Graph, p *Pattern, opts AfratiOptions) (int64, error) {
	res, err := afrati.Run(g, p, opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// SGIAOptions configures CountSGIA.
type SGIAOptions = sgia.Options

// CountSGIA counts instances with the SGIA-MR-style iterative edge join
// (Plantenga, JPDC 2013).
func CountSGIA(g *Graph, p *Pattern, opts SGIAOptions) (int64, error) {
	res, err := sgia.Run(g, p, opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// OneHopOptions configures CountOneHop.
type OneHopOptions = onehop.Options

// CountOneHop counts instances with the PowerGraph-style fixed-traversal-
// order engine (one-hop pruning only).
func CountOneHop(g *Graph, p *Pattern, opts OneHopOptions) (int64, error) {
	res, err := onehop.Run(g, p, opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}
