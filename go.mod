module psgl

go 1.22
