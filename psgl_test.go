package psgl_test

// Black-box tests of the public API: everything here goes through the psgl
// package surface only, as a downstream user would.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"psgl"
)

func TestQuickstartFlow(t *testing.T) {
	g := psgl.GenerateChungLu(2000, 8000, 1.8, 42)
	res, err := psgl.List(g, psgl.Square(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count <= 0 {
		t.Fatal("no squares found in a dense power-law graph")
	}
	if want := psgl.CountCentralized(g, psgl.Square()); res.Count != want {
		t.Fatalf("List=%d oracle=%d", res.Count, want)
	}
}

func TestCountMatchesList(t *testing.T) {
	g := psgl.GenerateErdosRenyi(500, 2500, 7)
	res, err := psgl.List(g, psgl.Triangle(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, err := psgl.Count(g, psgl.Triangle(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n != res.Count {
		t.Fatalf("Count=%d List=%d", n, res.Count)
	}
}

func TestAllEnginesAgreeOnPublicAPI(t *testing.T) {
	g := psgl.GenerateErdosRenyi(150, 900, 3)
	for _, p := range []*psgl.Pattern{psgl.Triangle(), psgl.Square(), psgl.Diamond(), psgl.FourClique()} {
		oracle := psgl.CountCentralized(g, p)
		ps, err := psgl.Count(g, p, psgl.NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		af, err := psgl.CountAfrati(g, p, psgl.AfratiOptions{Buckets: 4})
		if err != nil {
			t.Fatal(err)
		}
		sg, err := psgl.CountSGIA(g, p, psgl.SGIAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oh, err := psgl.CountOneHop(g, p, psgl.OneHopOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if ps != oracle || af != oracle || sg != oracle || oh != oracle {
			t.Errorf("%s: oracle=%d psgl=%d afrati=%d sgia=%d onehop=%d",
				p.Name(), oracle, ps, af, sg, oh)
		}
	}
}

func TestTriangleFastPathAgrees(t *testing.T) {
	g := psgl.GenerateChungLu(3000, 12000, 1.7, 11)
	if got, want := psgl.CountTriangles(g), psgl.CountCentralized(g, psgl.Triangle()); got != want {
		t.Fatalf("CountTriangles=%d oracle=%d", got, want)
	}
}

func TestEdgeListRoundTripPublic(t *testing.T) {
	g := psgl.GenerateErdosRenyi(100, 400, 5)
	var buf bytes.Buffer
	if err := psgl.SaveEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := psgl.LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d -> %d after round trip", g.NumEdges(), g2.NumEdges())
	}
}

func TestCustomPattern(t *testing.T) {
	// Bowtie: two triangles sharing vertex 2.
	p, err := psgl.NewPattern("bowtie", 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := psgl.GenerateErdosRenyi(80, 500, 9)
	got, err := psgl.Count(g, p, psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := psgl.CountCentralized(g, p); got != want {
		t.Fatalf("bowtie: psgl=%d oracle=%d", got, want)
	}
}

func TestPatternByNamePublic(t *testing.T) {
	p, err := psgl.PatternByName("cycle5")
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 5 {
		t.Fatalf("cycle5 has %d vertices", p.N())
	}
	if _, err := psgl.PatternByName("nonsense"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestOOMSurfacedPublicly(t *testing.T) {
	g := psgl.GenerateChungLu(1000, 5000, 1.7, 2)
	opts := psgl.NewOptions()
	opts.MaxIntermediate = 50
	_, err := psgl.List(g, psgl.Square(), opts)
	if !errors.Is(err, psgl.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestTCPExchangePublic(t *testing.T) {
	g := psgl.GenerateErdosRenyi(100, 500, 4)
	opts := psgl.NewOptions()
	opts.Workers = 2
	opts.Exchange = psgl.NewTCPExchange()
	got, err := psgl.Count(g, psgl.Triangle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := psgl.CountCentralized(g, psgl.Triangle()); got != want {
		t.Fatalf("tcp=%d oracle=%d", got, want)
	}
}

func TestBuilderPublic(t *testing.T) {
	b := psgl.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.Build()
	n, err := psgl.Count(g, psgl.Triangle(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("triangles = %d, want 1", n)
	}
}

func TestOnInstanceStreaming(t *testing.T) {
	g := psgl.GenerateErdosRenyi(100, 600, 8)
	var mu sync.Mutex
	streamed := 0
	opts := psgl.NewOptions()
	opts.OnInstance = func(m []psgl.VertexID) {
		mu.Lock()
		streamed++
		mu.Unlock()
	}
	res, err := psgl.List(g, psgl.Triangle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(streamed) != res.Count {
		t.Fatalf("streamed %d, counted %d", streamed, res.Count)
	}
}

func TestGenerateFromSpec(t *testing.T) {
	good := map[string]int{
		"er:100:300":          100,
		"chunglu:200:800:1.8": 200,
		"ba:150:3":            150,
		"rmat:8:500":          256,
	}
	for spec, wantV := range good {
		g, err := psgl.GenerateFromSpec(spec, 1)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if g.NumVertices() != wantV {
			t.Errorf("%q: V=%d, want %d", spec, g.NumVertices(), wantV)
		}
	}
	for _, spec := range []string{"", "er", "er:10", "er:a:b", "chunglu:10:20", "chunglu:10:20:x", "nope:1:2", "rmat:8:500:9"} {
		if _, err := psgl.GenerateFromSpec(spec, 1); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

func TestOutOfCoreAndStreamPublic(t *testing.T) {
	g := psgl.GenerateChungLu(2000, 10000, 1.9, 6)
	exact := psgl.CountTriangles(g)
	ooc, err := psgl.CountTrianglesOutOfCore(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ooc != exact {
		t.Fatalf("out-of-core=%d exact=%d", ooc, exact)
	}
	est, err := psgl.EstimateTriangles(g, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exact > 0 && (est < 0.3*float64(exact) || est > 3*float64(exact)) {
		t.Fatalf("stream estimate %.0f wildly off exact %d", est, exact)
	}
}

func TestMotifCensusPublic(t *testing.T) {
	g := psgl.GenerateErdosRenyi(200, 1200, 9)
	census, err := psgl.MotifCensus(g, []*psgl.Pattern{psgl.Triangle(), psgl.Square(), psgl.Path(3)}, psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(census) != 3 {
		t.Fatalf("census has %d entries", len(census))
	}
	if census["triangle"] != psgl.CountCentralized(g, psgl.Triangle()) {
		t.Fatal("census triangle count wrong")
	}
	if census["path3"] == 0 {
		t.Fatal("no wedges in a dense graph")
	}
}

func TestCensusPublic(t *testing.T) {
	g := psgl.GenerateChungLu(400, 1200, 2.0, 13)
	res, err := psgl.Census(g, 3, psgl.CensusOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraphs == 0 || len(res.Classes) == 0 {
		t.Fatalf("empty census on a dense graph: %+v", res)
	}
	if err := psgl.VerifyCensus(g, res); err != nil {
		t.Fatal(err)
	}
	// The triangle class of the k=3 census must agree with the listing
	// engine's triangle count — the two engines meet on this number.
	triangles, err := psgl.Count(g, psgl.Triangle(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	var censusTriangles int64
	for _, c := range res.Classes {
		if c.Motif == "edges(0-1,0-2,1-2)" {
			censusTriangles = c.Count
		}
	}
	if censusTriangles != triangles {
		t.Fatalf("census counted %d triangles, listing engine %d", censusTriangles, triangles)
	}

	// A shared canon cache turns a repeat census all-hits.
	cache := psgl.NewCensusCanonCache(3)
	if _, err := psgl.Census(g, 3, psgl.CensusOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	warm, err := psgl.Census(g, 3, psgl.CensusOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheMisses != 0 {
		t.Fatalf("warm census still missed the canon cache %d times", warm.CacheMisses)
	}

	// Cancellation and the vertex cap surface as public errors.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := psgl.CensusContext(ctx, g, 3, psgl.CensusOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled census returned %v", err)
	}
}

func TestParseCensusPublic(t *testing.T) {
	k, ok, err := psgl.ParseCensus("census(4)")
	if err != nil || !ok || k != 4 {
		t.Fatalf("ParseCensus(census(4)) = %d, %v, %v", k, ok, err)
	}
	if _, ok, _ := psgl.ParseCensus("triangle"); ok {
		t.Fatal("plain pattern misread as a census query")
	}
	if _, ok, err := psgl.ParseCensus("census(99)"); !ok || err == nil {
		t.Fatal("out-of-range census k accepted")
	}
	if psgl.MinCensusK != 2 || psgl.MaxCensusK != 5 {
		t.Fatalf("census k range [%d,%d]", psgl.MinCensusK, psgl.MaxCensusK)
	}
}

func TestLabeledMatchingPublic(t *testing.T) {
	g := psgl.GenerateErdosRenyi(120, 700, 10)
	labels := make([]int32, g.NumVertices())
	for i := range labels {
		labels[i] = int32(i % 2)
	}
	lp, err := psgl.Triangle().WithLabels([]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := psgl.NewOptions()
	opts.DataLabels = labels
	got, err := psgl.Count(g, lp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := psgl.CountCentralizedLabeled(g, lp, labels); got != want {
		t.Fatalf("labeled: psgl=%d oracle=%d", got, want)
	}
}

func TestLoadEdgeListRejectsGarbage(t *testing.T) {
	if _, err := psgl.LoadEdgeList(strings.NewReader("not an edge list")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFaultTolerancePublicAPI(t *testing.T) {
	// The whole fault-tolerance surface through the public package: injected
	// exchange faults, retry, checkpointing, recovery — same count as clean.
	g := psgl.GenerateErdosRenyi(60, 240, 5)
	clean, err := psgl.List(g, psgl.Triangle(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := psgl.NewOptions()
	opts.Exchange = psgl.NewFaultyExchange(nil, psgl.FaultConfig{
		Seed: 4, ErrorRate: 0.5, FromStep: 1,
	})
	opts.Retry = psgl.RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond}
	opts.CheckpointEvery = 1
	opts.CheckpointStore = psgl.NewMemCheckpointStore()
	opts.MaxRecoveries = 50
	res, err := psgl.ListContext(context.Background(), g, psgl.Triangle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != clean.Count {
		t.Fatalf("faulty run counted %d, clean run %d", res.Count, clean.Count)
	}
}

func TestDynamicGraphPublicAPI(t *testing.T) {
	// The dynamic-graph surface through the public package: overlay batches,
	// snapshots, and ListDelta's maintenance identity
	// count(old) + gained - lost == count(new).
	g := psgl.GenerateChungLu(300, 1200, 1.8, 9)
	before, err := psgl.Count(g, psgl.Diamond(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}

	ov := psgl.NewGraphOverlay(g)
	res, err := ov.ApplyBatch(psgl.MutationBatch{
		Add:    [][2]psgl.VertexID{{0, 1}, {0, 2}, {1, 2}, {2, 3}},
		Remove: [][2]psgl.VertexID{{4, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", res.Epoch)
	}
	mutated := ov.Snapshot()

	d, err := psgl.ListDelta(context.Background(), g, mutated, res.Added, res.Removed,
		psgl.Diamond(), psgl.DeltaOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	after, err := psgl.Count(mutated, psgl.Diamond(), psgl.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if before+d.Gained-d.Lost != after {
		t.Fatalf("maintenance identity broken: %d + %d - %d != %d", before, d.Gained, d.Lost, after)
	}
}
