package psgl_test

import (
	"fmt"
	"strings"

	"psgl"
)

// figure1 is the data graph of Figure 1 in the paper (1..6 -> 0..5).
func figure1() *psgl.Graph {
	return psgl.GraphFromEdges(6, [][2]psgl.VertexID{
		{0, 1}, {0, 4}, {0, 5}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
}

// The paper's running example: the square pattern occurs exactly three times
// in the Figure 1 data graph (vertex sets 1235, 1256, 2345).
func ExampleCount() {
	n, err := psgl.Count(figure1(), psgl.Square(), psgl.NewOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 3
}

func ExampleList() {
	opts := psgl.NewOptions()
	opts.Collect = true
	res, err := psgl.List(figure1(), psgl.Triangle(), opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("triangles:", res.Count)
	// Output: triangles: 4
}

func ExampleNewPattern() {
	// A custom 4-vertex pattern: the paw (triangle plus a pendant edge).
	// Symmetry breaking is automatic, so each occurrence counts once.
	paw, err := psgl.NewPattern("paw", 4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		panic(err)
	}
	n, err := psgl.Count(figure1(), paw, psgl.NewOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 18
}

func ExampleLoadEdgeList() {
	input := "# a 3-cycle\n10 20\n20 30\n30 10\n"
	g, err := psgl.LoadEdgeList(strings.NewReader(input))
	if err != nil {
		panic(err)
	}
	fmt.Println(psgl.CountTriangles(g))
	// Output: 1
}

func ExamplePatternByName() {
	p, err := psgl.PatternByName("clique4")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name(), p.N(), p.NumEdges())
	// Output: clique4 4 6
}
