package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psgl"
)

// runCLI invokes run() in-process and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"no source", nil, "one of -gen or -dataset is required"},
		{"both sources", []string{"-gen", "er:50:100", "-dataset", "wikitalk"}, "either -gen or -dataset, not both"},
		{"unknown generator", []string{"-gen", "smallworld:100:4"}, "bad generator spec"},
		{"malformed spec", []string{"-gen", "er:50"}, "bad generator spec"},
		{"negative size", []string{"-gen", "er:-50:100"}, "sizes must be positive"},
		{"zero size", []string{"-gen", "chunglu:0:100:1.8"}, "sizes must be positive"},
		{"negative edges", []string{"-gen", "ba:100:-2"}, "sizes must be positive"},
		{"negative gamma", []string{"-gen", "chunglu:100:400:-1.8"}, "gamma must be positive"},
		{"oversized rmat", []string{"-gen", "rmat:40:1000"}, "rmat scale must be <= 30"},
		{"unknown dataset", []string{"-dataset", "nosuch"}, "nosuch"},
		{"trailing args", []string{"-gen", "er:50:100", "extra"}, "unexpected arguments"},
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v: exit 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("args %v: stderr %q, want it to contain %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

func TestGenerateToStdout(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-gen", "er:100:300", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	g, err := psgl.LoadEdgeList(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("output is not a loadable edge list: %v", err)
	}
	if g.NumVertices() != 100 {
		t.Fatalf("generated %d vertices, want 100", g.NumVertices())
	}
	if !strings.Contains(stderr, "wrote 100 vertices") {
		t.Fatalf("summary missing from stderr: %q", stderr)
	}
}

func TestGenerateToFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.txt"), filepath.Join(dir, "b.txt")
	for _, out := range []string{a, b} {
		if code, _, stderr := runCLI(t, "-gen", "chunglu:200:800:1.8", "-seed", "3", "-o", out); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, stderr)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("same spec and seed produced different edge lists")
	}
	if len(da) == 0 {
		t.Fatal("empty output file")
	}
}
