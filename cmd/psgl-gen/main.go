// Command psgl-gen writes a synthetic graph as an edge list, either from a
// generator spec or as one of the named dataset analogues of Table 1.
//
// Usage:
//
//	psgl-gen -gen "chunglu:100000:500000:1.8" -seed 7 > graph.txt
//	psgl-gen -dataset wikitalk > wikitalk.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"psgl"
	"psgl/internal/datasets"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so CLI behavior — flag
// validation above all — is testable in-process. It returns the exit code:
// 0 on success, 2 on usage errors, 1 on runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl-gen: "+format+"\n", a...)
		return 1
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl-gen: "+format+"\n", a...)
		return 2
	}

	fs := flag.NewFlagSet("psgl-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		genSpec = fs.String("gen", "", `generator spec: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M"`)
		dataset = fs.String("dataset", "", fmt.Sprintf("named dataset analogue: %v", datasets.Names()))
		seed    = fs.Int64("seed", 1, "generator seed")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return usage("unexpected arguments %q", fs.Args())
	}

	var g *psgl.Graph
	switch {
	case *genSpec != "" && *dataset != "":
		return usage("pass either -gen or -dataset, not both")
	case *dataset != "":
		var err error
		g, err = datasets.Load(*dataset)
		if err != nil {
			return usage("%v", err)
		}
	case *genSpec != "":
		var err error
		g, err = psgl.GenerateFromSpec(*genSpec, *seed)
		if err != nil {
			return usage("%v", err)
		}
	default:
		return usage("one of -gen or -dataset is required")
	}

	w := bufio.NewWriter(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail("%v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := psgl.SaveEdgeList(w, g); err != nil {
		return fail("%v", err)
	}
	if err := w.Flush(); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	return 0
}
