// Command psgl-gen writes a synthetic graph as an edge list, either from a
// generator spec or as one of the named dataset analogues of Table 1.
//
// Usage:
//
//	psgl-gen -gen "chunglu:100000:500000:1.8" -seed 7 > graph.txt
//	psgl-gen -dataset wikitalk > wikitalk.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"psgl"
	"psgl/internal/datasets"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgl-gen: ")
	var (
		genSpec = flag.String("gen", "", `generator spec: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M"`)
		dataset = flag.String("dataset", "", fmt.Sprintf("named dataset analogue: %v", datasets.Names()))
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *psgl.Graph
	switch {
	case *genSpec != "" && *dataset != "":
		log.Fatal("pass either -gen or -dataset, not both")
	case *dataset != "":
		var err error
		g, err = datasets.Load(*dataset)
		if err != nil {
			log.Fatal(err)
		}
	case *genSpec != "":
		var err error
		g, err = psgl.GenerateFromSpec(*genSpec, *seed)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -gen or -dataset is required")
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := psgl.SaveEdgeList(w, g); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
}
