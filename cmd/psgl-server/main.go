// Command psgl-server runs the resident subgraph-listing query service: the
// data graph is loaded once, then pattern queries are answered over HTTP
// until the process is told to drain.
//
// Usage:
//
//	psgl-server -graph graph.txt -addr 127.0.0.1:8080
//	psgl-server -gen "chunglu:100000:500000:1.8" -max-inflight 4
//
// Query with any HTTP client:
//
//	curl 'localhost:8080/query?pattern=triangle&count_only=1'
//	curl 'localhost:8080/query?pattern=cycle(4)&limit=10'         # NDJSON stream
//	curl 'localhost:8080/stats'
//
// Mutate the resident graph and keep standing queries current:
//
//	curl -d '{"add":[[0,1],[1,2],[0,2]]}' localhost:8080/update
//	curl 'localhost:8080/subscribe?pattern=triangle'              # NDJSON deltas
//
// SIGTERM or SIGINT drains: new queries get 503, in-flight queries finish
// (up to -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psgl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// testListenerReady, when non-nil, observes the bound listen address — a
// test seam so in-process tests can use ":0" and still find the server.
var testListenerReady func(addr string)

// run is main with its environment made explicit, so CLI behavior — flag
// validation and the drain path above all — is testable in-process. It
// returns the exit code: 0 on a clean drain, 2 on usage errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl-server: "+format+"\n", a...)
		return 1
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl-server: "+format+"\n", a...)
		return 2
	}

	fs := flag.NewFlagSet("psgl-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath    = fs.String("graph", "", "edge-list file to load (SNAP/KONECT format)")
		genSpec      = fs.String("gen", "", `generator spec: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M"`)
		seed         = fs.Int64("seed", 1, "seed for generation, partitioning, and randomized strategies")
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers      = fs.Int("workers", 4, "BSP workers per query (>= 1)")
		strategy     = fs.String("strategy", "wa", "default distribution strategy: random, roulette, wa")
		alpha        = fs.Float64("alpha", 0.5, "workload-aware penalty exponent (0,1]")
		noIndex      = fs.Bool("no-edge-index", false, "disable the bloom edge index")
		async        = fs.Bool("async", false, "run local queries on the pipelined async BSP exchange (credit-based termination; counts identical to strict mode)")
		compress     = fs.Bool("compress", false, "prefix-compress Gpsi frames on local queries (counts identical to flat mode)")
		maxInFlight  = fs.Int("max-inflight", 2, "queries executing concurrently (>= 1)")
		maxQueue     = fs.Int("max-queue", 8, "queries waiting behind the execution slots before 429 (>= 0)")
		defDeadline  = fs.Duration("default-deadline", 30*time.Second, "deadline for queries without deadline_ms")
		maxDeadline  = fs.Duration("max-deadline", 5*time.Minute, "cap on client-supplied deadlines")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight queries on shutdown")
		tracePath    = fs.String("trace", "", "write a JSONL trace of every query's events to this file")
		workerPlane  = fs.Bool("worker-plane", false, "coordinate remote psgl-worker processes instead of executing queries in-process")
		quorum       = fs.Int("quorum", 1, "minimum alive workers to serve queries; below it /query answers 503 with Retry-After (worker-plane mode)")
		heartbeat    = fs.Duration("heartbeat", 500*time.Millisecond, "worker heartbeat interval (worker-plane mode)")
		missLimit    = fs.Int("miss-limit", 3, "consecutive missed heartbeats before a worker is evicted (worker-plane mode)")
		hedge        = fs.Duration("hedge", 2*time.Second, "delay before hedging a count query to a second worker; negative disables (worker-plane mode)")
		compactAt    = fs.Int("compact-threshold", 1024, "fold the mutation overlay's patch into a fresh base once it reaches this many edges; 0 disables compaction")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return usage("unexpected arguments %q", fs.Args())
	}
	if *workers < 1 {
		return usage("-workers must be >= 1, have %d", *workers)
	}
	if *maxInFlight < 1 {
		return usage("-max-inflight must be >= 1, have %d", *maxInFlight)
	}
	if *maxQueue < 0 {
		return usage("-max-queue must be >= 0, have %d", *maxQueue)
	}
	if *alpha <= 0 || *alpha > 1 {
		return usage("-alpha must be in (0, 1], have %g", *alpha)
	}
	if !*workerPlane && (*quorum != 1 || *heartbeat != 500*time.Millisecond || *missLimit != 3 || *hedge != 2*time.Second) {
		return usage("-quorum, -heartbeat, -miss-limit, and -hedge require -worker-plane")
	}
	if *workerPlane && *quorum < 1 {
		return usage("-quorum must be >= 1, have %d", *quorum)
	}

	cfg := psgl.ServerConfig{
		Workers:          *workers,
		Alpha:            *alpha,
		Seed:             *seed,
		DisableEdgeIndex: *noIndex,
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		AsyncExchange:    *async,
		CompressFrames:   *compress,
		CompactThreshold: *compactAt,
	}
	if *compactAt < 0 {
		return usage("-compact-threshold must be >= 0, have %d", *compactAt)
	}
	// -compact-threshold 0 must mean "never compact", which the config
	// spells as -1 (0 asks for the default).
	if *compactAt == 0 {
		cfg.CompactThreshold = -1
	}
	switch *strategy {
	case "random":
		cfg.Strategy = psgl.StrategyRandom
	case "roulette":
		cfg.Strategy = psgl.StrategyRoulette
	case "wa":
		cfg.Strategy = psgl.StrategyWorkloadAware
	default:
		return usage("unknown strategy %q (want random, roulette, or wa)", *strategy)
	}
	// -max-queue 0 must mean "no queue", which the config spells as -1.
	if *maxQueue == 0 {
		cfg.MaxQueue = -1
	}
	if *workerPlane {
		cfg.Plane = &psgl.PlaneConfig{
			Quorum:            *quorum,
			HeartbeatInterval: *heartbeat,
			MissLimit:         *missLimit,
			HedgeDelay:        *hedge,
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail("%v", err)
		}
		defer f.Close()
		cfg.TraceSink = psgl.NewJSONLSink(f)
	}

	var g *psgl.Graph
	var err error
	switch {
	case *graphPath != "" && *genSpec != "":
		return usage("pass either -graph or -gen, not both")
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			return usage("%v", err)
		}
		g, err = psgl.LoadEdgeList(f)
		f.Close()
		if err != nil {
			return usage("loading %s: %v", *graphPath, err)
		}
	case *genSpec != "":
		g, err = psgl.GenerateFromSpec(*genSpec, *seed)
		if err != nil {
			return usage("%v", err)
		}
	default:
		return usage("one of -graph or -gen is required")
	}

	srv, err := psgl.NewServer(g, cfg)
	if err != nil {
		return fail("%v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("%v", err)
	}
	mode := "/query, /update, /subscribe, /healthz, /stats, /debug/"
	if *workerPlane {
		mode += ", /workers; coordinating remote workers (quorum " + fmt.Sprint(*quorum) + ")"
	}
	fmt.Fprintf(stderr, "psgl-server: %d vertices, %d edges resident; serving on http://%s (%s)\n",
		g.NumVertices(), g.NumEdges(), ln.Addr(), mode)
	if testListenerReady != nil {
		testListenerReady(ln.Addr().String())
	}

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	fmt.Fprintln(stderr, "psgl-server: shutdown signal; draining in-flight queries")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		hs.Close()
		return fail("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return fail("shutdown: %v", err)
	}
	fmt.Fprintln(stderr, "psgl-server: drained, exiting")
	return 0
}
