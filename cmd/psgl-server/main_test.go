package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// runCLI invokes run() in-process and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"no graph source", nil, "one of -graph or -gen is required"},
		{"both graph sources", []string{"-graph", "x.txt", "-gen", "er:50:100"}, "either -graph or -gen, not both"},
		{"bad generator", []string{"-gen", "er:-50:100"}, "sizes must be positive"},
		{"missing graph file", []string{"-graph", "/no/such/file.txt"}, "no such file"},
		{"zero workers", []string{"-gen", "er:50:100", "-workers", "0"}, "-workers must be >= 1"},
		{"zero inflight", []string{"-gen", "er:50:100", "-max-inflight", "0"}, "-max-inflight must be >= 1"},
		{"negative queue", []string{"-gen", "er:50:100", "-max-queue", "-1"}, "-max-queue must be >= 0"},
		{"bad alpha", []string{"-gen", "er:50:100", "-alpha", "2"}, "-alpha must be in (0, 1]"},
		{"unknown strategy", []string{"-gen", "er:50:100", "-strategy", "fifo"}, `unknown strategy "fifo"`},
		{"trailing args", []string{"-gen", "er:50:100", "extra"}, "unexpected arguments"},
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"plane flags without plane", []string{"-gen", "er:50:100", "-quorum", "2"}, "require -worker-plane"},
		{"zero quorum", []string{"-gen", "er:50:100", "-worker-plane", "-quorum", "0"}, "-quorum must be >= 1"},
		{"negative compact threshold", []string{"-gen", "er:50:100", "-compact-threshold", "-5"}, "-compact-threshold must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v: exit 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("args %v: stderr %q, want it to contain %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

// TestServeQueryAndSigtermDrain is the end-to-end binary test: boot the
// server on an ephemeral port, answer a count query and a limited stream,
// send the process SIGTERM, and require a clean exit-0 drain.
func TestServeQueryAndSigtermDrain(t *testing.T) {
	addrCh := make(chan string, 1)
	testListenerReady = func(addr string) { addrCh <- addr }
	defer func() { testListenerReady = nil }()

	var wg sync.WaitGroup
	var code int
	var stderr bytes.Buffer
	wg.Add(1)
	go func() {
		defer wg.Done()
		var stdout bytes.Buffer
		code = run([]string{"-gen", "chunglu:400:1600:1.8", "-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("server never bound its listener")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/query?pattern=triangle&count_only=1")
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Count   int64  `json:"count"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cr.TraceID == "" {
		t.Fatalf("count query: status %d, body %+v", resp.StatusCode, cr)
	}

	resp, err = http.Get(base + "/query?pattern=triangle&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], `"done":true`) {
		t.Fatalf("stream did not end with a trailer:\n%s", body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if code != 0 {
		t.Fatalf("exit %d after SIGTERM, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Fatalf("drain not reported:\n%s", stderr.String())
	}
}

// TestServeUpdateEndpoint: the binary accepts mutations on /update and
// reports the new epoch on /stats, with -compact-threshold wired through.
func TestServeUpdateEndpoint(t *testing.T) {
	addrCh := make(chan string, 1)
	testListenerReady = func(addr string) { addrCh <- addr }
	defer func() { testListenerReady = nil }()

	exited := make(chan int, 1)
	go func() {
		var stdout, stderr bytes.Buffer
		exited <- run([]string{"-gen", "er:100:200", "-addr", "127.0.0.1:0", "-compact-threshold", "2"}, &stdout, &stderr)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("server never bound its listener")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/update", "application/json", strings.NewReader(`{"add":[[0,1],[0,2],[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ur struct {
		Epoch     uint64 `json:"epoch"`
		Compacted bool   `json:"compacted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ur.Epoch != 1 {
		t.Fatalf("update: status %d, %+v", resp.StatusCode, ur)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Graph struct {
			Epoch uint64 `json:"epoch"`
		} `json:"graph"`
		Mutations struct {
			Batches          int64 `json:"batches"`
			CompactThreshold int   `json:"compact_threshold"`
		} `json:"mutations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Graph.Epoch != 1 || st.Mutations.Batches != 1 || st.Mutations.CompactThreshold != 2 {
		t.Fatalf("stats after update: %+v", st)
	}

	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit")
	}
}

// TestServeTraceFile: -trace records each query's events tagged with its
// trace ID.
func TestServeTraceFile(t *testing.T) {
	tracePath := t.TempDir() + "/trace.jsonl"
	addrCh := make(chan string, 1)
	testListenerReady = func(addr string) { addrCh <- addr }
	defer func() { testListenerReady = nil }()

	exited := make(chan int, 1)
	go func() {
		var stdout, stderr bytes.Buffer
		exited <- run([]string{"-gen", "er:200:800", "-addr", "127.0.0.1:0", "-trace", tracePath}, &stdout, &stderr)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("server never bound its listener")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/query?pattern=pg1&count_only=1", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit")
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"tag":"q1"`)) {
		t.Fatalf("trace has no q1-tagged events:\n%s", data)
	}
}
