package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psgl/internal/obs"
)

// runCLI invokes run() in-process and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"negative workers", []string{"-gen", "er:50:100", "-workers", "-3"}, "-workers must be >= 1"},
		{"zero workers", []string{"-gen", "er:50:100", "-workers", "0"}, "-workers must be >= 1"},
		{"zero supersteps", []string{"-gen", "er:50:100", "-max-supersteps", "0"}, "-max-supersteps must be positive"},
		{"negative supersteps", []string{"-gen", "er:50:100", "-max-supersteps", "-1"}, "-max-supersteps must be positive"},
		{"unknown strategy", []string{"-gen", "er:50:100", "-strategy", "alphabetical"}, `unknown strategy "alphabetical"`},
		{"bad alpha", []string{"-gen", "er:50:100", "-alpha", "1.5"}, "-alpha must be in (0, 1]"},
		{"zero retries", []string{"-gen", "er:50:100", "-exchange-retries", "0"}, "-exchange-retries must be >= 1"},
		{"resume without dir", []string{"-gen", "er:50:100", "-resume"}, "-resume requires -checkpoint-dir"},
		{"recoveries without dir", []string{"-gen", "er:50:100", "-max-recoveries", "2"}, "-max-recoveries requires -checkpoint-dir"},
		{"no graph source", []string{"-pattern", "pg1"}, "one of -graph or -gen is required"},
		{"both graph sources", []string{"-graph", "x.txt", "-gen", "er:50:100"}, "either -graph or -gen, not both"},
		{"unknown pattern", []string{"-gen", "er:50:100", "-pattern", "pg99"}, "pg99"},
		{"trailing args", []string{"-gen", "er:50:100", "extra"}, "unexpected arguments"},
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v: exit 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("args %v: stderr %q, want it to contain %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

func TestRunCountsTriangles(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-gen", "er:200:800", "-pattern", "pg1", "-workers", "2", "-verify")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "verified against the single-thread oracle") {
		t.Fatalf("oracle verification missing from stderr:\n%s", stderr)
	}
	if strings.TrimSpace(stdout) == "" {
		t.Fatalf("no count on stdout")
	}
}

func TestPatternDSLOnCommandLine(t *testing.T) {
	// The -pattern flag accepts the full DSL; spellings of the triangle must
	// agree with each other (each run is oracle-verified).
	var counts []string
	for _, spec := range []string{"pg1", "cycle(3)", "edges(0-1,1-2,2-0)"} {
		code, stdout, stderr := runCLI(t,
			"-gen", "er:200:800", "-pattern", spec, "-workers", "2", "-verify")
		if code != 0 {
			t.Fatalf("pattern %q: exit %d, stderr:\n%s", spec, code, stderr)
		}
		counts = append(counts, strings.TrimSpace(stdout))
	}
	if counts[0] != counts[1] || counts[0] != counts[2] {
		t.Fatalf("DSL spellings disagree: %v", counts)
	}
}

func TestRunWritesTraceAndReport(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.jsonl")
	code, _, stderr := runCLI(t,
		"-gen", "er:200:800", "-pattern", "pg1", "-workers", "2", "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "== observability report ==") {
		t.Fatalf("report missing from stderr:\n%s", stderr)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("trace not valid JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if events[0].Type != obs.EventRunStart {
		t.Fatalf("first event = %v, want run_start", events[0].Type)
	}
	if last := events[len(events)-1]; last.Type != obs.EventRunEnd {
		t.Fatalf("last event = %v, want run_end", last.Type)
	}
}

func TestCensusBatchMode(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-gen", "chunglu:300:900:2.0", "-pattern", "census(3)", "-workers", "2", "-verify", "-stats")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var res struct {
		K         int   `json:"k"`
		Subgraphs int64 `json:"subgraphs"`
		Classes   []struct {
			Motif string `json:"motif"`
			Count int64  `json:"count"`
		} `json:"classes"`
	}
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("census stdout is not JSON: %v\n%s", err, stdout)
	}
	if res.K != 3 || res.Subgraphs == 0 || len(res.Classes) == 0 {
		t.Fatalf("implausible census output: %+v", res)
	}
	if !strings.Contains(stderr, "verified against the single-thread census oracle") {
		t.Fatalf("census oracle verification missing from stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "canon cache:") {
		t.Fatalf("-stats census summary missing from stderr:\n%s", stderr)
	}
}

// TestCensusGoldenHistogram pins the committed golden histogram the CI census
// smoke diffs against: same generator, seed, and k as the workflow step.
func TestCensusGoldenHistogram(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-gen", "chunglu:500:1500:2.0", "-seed", "1", "-pattern", "census(3)", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	type histogram struct {
		K         int   `json:"k"`
		Subgraphs int64 `json:"subgraphs"`
		Classes   []struct {
			Code  uint32 `json:"code"`
			Motif string `json:"motif"`
			Count int64  `json:"count"`
		} `json:"classes"`
	}
	var got, want histogram
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("census stdout is not JSON: %v", err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "census_k3_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(golden, &want); err != nil {
		t.Fatalf("golden file is not JSON: %v", err)
	}
	if got.K != want.K || got.Subgraphs != want.Subgraphs || len(got.Classes) != len(want.Classes) {
		t.Fatalf("census drifted from the committed golden:\ngot  %+v\nwant %+v", got, want)
	}
	for i := range want.Classes {
		if got.Classes[i] != want.Classes[i] {
			t.Fatalf("class %d drifted from the committed golden: got %+v, want %+v",
				i, got.Classes[i], want.Classes[i])
		}
	}
}

func TestCensusBatchModeValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"k too large", []string{"-gen", "er:50:100", "-pattern", "census(6)"}, "out of supported range"},
		{"k too small", []string{"-gen", "er:50:100", "-pattern", "census(1)"}, "out of supported range"},
		{"malformed k", []string{"-gen", "er:50:100", "-pattern", "census(x)"}, "census wants one integer argument"},
		{"explain rejected", []string{"-gen", "er:50:100", "-pattern", "census(3)", "-explain"}, "-explain applies to pattern listing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("args %v: exit %d, want usage error 2; stderr:\n%s", tc.args, code, stderr)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("args %v: stderr %q, want it to contain %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

func TestExplainExitsCleanly(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-gen", "er:100:300", "-pattern", "pg2", "-explain")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "initial-vertex cost estimates") {
		t.Fatalf("explain output missing:\n%s", stdout)
	}
}

// TestAsyncFlagMatchesStrict: -async produces the same count as the default
// barriered run (verified against the oracle too), over both the in-process
// and loopback-TCP transports; -step-timeout is rejected in async mode.
func TestAsyncFlagMatchesStrict(t *testing.T) {
	code, strictOut, stderr := runCLI(t,
		"-gen", "er:150:600", "-pattern", "triangle", "-workers", "3")
	if code != 0 {
		t.Fatalf("strict run: exit %d, stderr:\n%s", code, stderr)
	}
	for _, extra := range [][]string{{"-async"}, {"-async", "-tcp"}} {
		args := append([]string{"-gen", "er:150:600", "-pattern", "triangle", "-workers", "3", "-verify"}, extra...)
		code, asyncOut, stderr := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, stderr)
		}
		if asyncOut != strictOut {
			t.Fatalf("%v: count %q, strict %q", extra, asyncOut, strictOut)
		}
	}
	code, _, stderr = runCLI(t,
		"-gen", "er:150:600", "-pattern", "triangle", "-async", "-step-timeout", "5s")
	if code != 2 {
		t.Fatalf("-async -step-timeout: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-step-timeout applies to barriered supersteps") {
		t.Fatalf("stderr %q missing async step-timeout rejection", stderr)
	}
}
