// Command psgl runs one subgraph-listing job from the command line.
//
// Usage:
//
//	psgl -pattern pg2 -graph path/to/edges.txt [flags]
//	psgl -pattern triangle -gen "chunglu:20000:80000:1.8" [flags]
//
// Generator specs: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psgl"
	"psgl/internal/core"
	"psgl/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgl: ")
	var (
		graphPath   = flag.String("graph", "", "edge-list file to load (SNAP/KONECT format)")
		genSpec     = flag.String("gen", "", `generator spec: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M"`)
		patternName = flag.String("pattern", "pg1", "pattern: pg1..pg5, triangle, square, diamond, house, cycleN, cliqueN, pathN, starN")
		workers     = flag.Int("workers", 8, "BSP worker count")
		strategy    = flag.String("strategy", "wa", "distribution strategy: random, roulette, wa")
		alpha       = flag.Float64("alpha", 0.5, "workload-aware penalty exponent (0,1]")
		initial     = flag.Int("initial", -1, "initial pattern vertex (-1 = automatic)")
		noIndex     = flag.Bool("no-edge-index", false, "disable the bloom edge index")
		seed        = flag.Int64("seed", 1, "seed for partition and randomized strategies")
		budget      = flag.Int64("max-intermediate", 0, "abort after this many partial instances (0 = unlimited)")
		tcp         = flag.Bool("tcp", false, "route messages over loopback TCP")
		timeout     = flag.Duration("timeout", 0, "overall run timeout (0 = none); Ctrl-C also cancels cleanly")
		stepTimeout = flag.Duration("step-timeout", 0, "per-superstep deadline (0 = none)")
		retries     = flag.Int("exchange-retries", 1, "attempts per superstep exchange (bounded exponential backoff)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for barrier checkpoints (enables checkpointing)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "checkpoint every N supersteps (with -checkpoint-dir)")
		resume      = flag.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir")
		maxRecover  = flag.Int("max-recoveries", 0, "max in-run checkpoint-restore recoveries of failed supersteps")
		showStats   = flag.Bool("stats", false, "print detailed run statistics")
		explain     = flag.Bool("explain", false, "print the Algorithm 4 cost estimate per initial pattern vertex and exit")
		verify      = flag.Bool("verify", false, "cross-check the count against the single-thread oracle (slow on large graphs)")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *genSpec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	p, err := psgl.PatternByName(*patternName)
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		explainInitialVertex(g, p)
		return
	}

	opts := psgl.NewOptions()
	opts.Workers = *workers
	opts.Alpha = *alpha
	opts.InitialVertex = *initial
	opts.DisableEdgeIndex = *noIndex
	opts.Seed = *seed
	opts.MaxIntermediate = *budget
	switch *strategy {
	case "random":
		opts.Strategy = psgl.StrategyRandom
	case "roulette":
		opts.Strategy = psgl.StrategyRoulette
	case "wa":
		opts.Strategy = psgl.StrategyWorkloadAware
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	if *tcp {
		opts.Exchange = psgl.NewTCPExchange()
	}
	opts.StepTimeout = *stepTimeout
	opts.Retry = psgl.RetryPolicy{MaxAttempts: *retries}
	opts.MaxRecoveries = *maxRecover
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}
	if *maxRecover > 0 && *ckptDir == "" {
		log.Fatal("-max-recoveries requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		store, err := psgl.NewFileCheckpointStore(*ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		every := *ckptEvery
		if every <= 0 {
			every = 1
		}
		opts.CheckpointEvery = every
		opts.CheckpointStore = store
		if *resume {
			opts.ResumeFrom = store
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges; pattern: %s\n",
		g.NumVertices(), g.NumEdges(), p)
	start := time.Now()
	res, err := psgl.ListContext(ctx, g, p, opts)
	if err != nil {
		if ctx.Err() != nil && *ckptDir != "" {
			log.Fatalf("%v (run state checkpointed in %s after %v; rerun with -resume to continue)",
				err, *ckptDir, time.Since(start).Round(time.Millisecond))
		}
		log.Fatal(err)
	}
	fmt.Printf("%d\n", res.Count)
	if *verify {
		if want := psgl.CountCentralized(g, p); want != res.Count {
			log.Fatalf("VERIFICATION FAILED: psgl=%d oracle=%d", res.Count, want)
		}
		fmt.Fprintln(os.Stderr, "verified against the single-thread oracle")
	}
	if *showStats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "supersteps:       %d\n", s.Supersteps)
		fmt.Fprintf(os.Stderr, "initial vertex:   v%d\n", s.InitialVertex+1)
		fmt.Fprintf(os.Stderr, "gpsi generated:   %d\n", s.GpsiGenerated)
		fmt.Fprintf(os.Stderr, "pruned: degree=%d order=%d index=%d injective=%d verify=%d\n",
			s.PrunedByDegree, s.PrunedByOrder, s.PrunedByIndex, s.PrunedByInjectivity, s.PrunedByVerify)
		fmt.Fprintf(os.Stderr, "index queries:    %d (index %d bytes)\n", s.EdgeIndexQueries, s.EdgeIndexBytes)
		fmt.Fprintf(os.Stderr, "load makespan:    %.0f units\n", s.LoadMakespan)
		if s.Recoveries > 0 {
			fmt.Fprintf(os.Stderr, "recoveries:       %d checkpoint restores\n", s.Recoveries)
		}
		fmt.Fprintf(os.Stderr, "wall time:        %v\n", s.WallTime)
	}
}

// explainInitialVertex prints the Algorithm 4 cost estimate for every
// possible initial pattern vertex and the rule-based recommendation.
func explainInitialVertex(g *psgl.Graph, p *psgl.Pattern) {
	broken := p.BreakAutomorphisms()
	dist := stats.FromHistogram(g.DegreeHistogram())
	fmt.Printf("initial-vertex cost estimates for %s (data graph: %d vertices, %d edges)\n",
		broken, g.NumVertices(), g.NumEdges())
	best := core.SelectInitialVertex(broken, dist)
	for v := 0; v < broken.N(); v++ {
		marker := " "
		if v == best {
			marker = "*"
		}
		fmt.Printf("%s v%d: estimated Gpsi volume %.3g\n",
			marker, v+1, core.EstimateInitialVertexCost(broken, dist, v))
	}
	if broken.IsCycle() || broken.IsClique() {
		fmt.Printf("pattern is a %s: Theorem 5 rule applies, lowest-rank vertex v%d is optimal\n",
			kindOf(broken), broken.LowestRankVertex()+1)
	}
}

func kindOf(p *psgl.Pattern) string {
	if p.IsClique() {
		return "clique"
	}
	return "cycle"
}

func loadGraph(path, spec string, seed int64) (*psgl.Graph, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("pass either -graph or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return psgl.LoadEdgeList(f)
	case spec != "":
		return psgl.GenerateFromSpec(spec, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -gen is required")
	}
}
