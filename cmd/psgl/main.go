// Command psgl runs one subgraph-listing job from the command line.
//
// Usage:
//
//	psgl -pattern pg2 -graph path/to/edges.txt [flags]
//	psgl -pattern triangle -gen "chunglu:20000:80000:1.8" [flags]
//	psgl -pattern "census(4)" -gen "chunglu:5000:15000:2.5" [flags]
//
// Generator specs: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M".
//
// census(k) selects the ESU motif-census engine instead of pattern listing:
// every connected k-vertex subgraph shape is counted and the motif histogram
// is printed as JSON. -workers, -timeout, -verify, -stats, and the
// observability flags apply; the listing-engine flags (strategy, edge index,
// checkpointing, TCP exchange) do not and are ignored.
//
// Observability: -trace writes a JSONL trace of the run's events and prints
// the end-of-run report to stderr; -pprof-addr serves net/http/pprof, expvar
// counters (/debug/vars), and the live observer snapshot (/debug/obs).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psgl"
	"psgl/internal/core"
	"psgl/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so CLI behavior — flag
// validation above all — is testable in-process. It returns the exit code:
// 0 on success, 2 on usage errors, 1 on runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl: "+format+"\n", a...)
		return 1
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl: "+format+"\n", a...)
		return 2
	}

	fs := flag.NewFlagSet("psgl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath   = fs.String("graph", "", "edge-list file to load (SNAP/KONECT format)")
		genSpec     = fs.String("gen", "", `generator spec: "er:N:M", "chunglu:N:M:GAMMA", "ba:N:K", "rmat:SCALE:M"`)
		patternName = fs.String("pattern", "pg1", `pattern DSL: pg1..pg5, triangle, square, diamond, house, "cycle(4)", "clique(4)", "path(3)", "star(5)", "edges(0-1,1-2,2-0)", or "census(4)" for the motif census`)
		workers     = fs.Int("workers", 8, "BSP worker count (>= 1)")
		strategy    = fs.String("strategy", "wa", "distribution strategy: random, roulette, wa")
		alpha       = fs.Float64("alpha", 0.5, "workload-aware penalty exponent (0,1]")
		initial     = fs.Int("initial", -1, "initial pattern vertex (-1 = automatic)")
		noIndex     = fs.Bool("no-edge-index", false, "disable the bloom edge index")
		seed        = fs.Int64("seed", 1, "seed for partition and randomized strategies")
		budget      = fs.Int64("max-intermediate", 0, "abort after this many partial instances (0 = unlimited)")
		maxSteps    = fs.Int("max-supersteps", 0, "abort after this many supersteps (0 = engine default)")
		tcp         = fs.Bool("tcp", false, "route messages over loopback TCP")
		async       = fs.Bool("async", false, "pipelined async exchange: flush frames as produced, credit-based termination instead of barriers (counts identical to strict mode)")
		compress    = fs.Bool("compress", false, "prefix-compress Gpsi frames: front-coded wire format, grouped inboxes, group-wise expansion (counts identical to flat mode)")
		timeout     = fs.Duration("timeout", 0, "overall run timeout (0 = none); Ctrl-C also cancels cleanly")
		stepTimeout = fs.Duration("step-timeout", 0, "per-superstep deadline (0 = none)")
		retries     = fs.Int("exchange-retries", 1, "attempts per superstep exchange (bounded exponential backoff)")
		ckptDir     = fs.String("checkpoint-dir", "", "directory for barrier checkpoints (enables checkpointing)")
		ckptEvery   = fs.Int("checkpoint-every", 1, "checkpoint every N supersteps (with -checkpoint-dir)")
		resume      = fs.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir")
		maxRecover  = fs.Int("max-recoveries", 0, "max in-run checkpoint-restore recoveries of failed supersteps")
		tracePath   = fs.String("trace", "", "write a JSONL trace of run events to this file and print the observability report")
		pprofAddr   = fs.String("pprof-addr", "", `serve net/http/pprof + expvar counters on this address (e.g. "localhost:6060")`)
		showStats   = fs.Bool("stats", false, "print detailed run statistics")
		explain     = fs.Bool("explain", false, "print the Algorithm 4 cost estimate per initial pattern vertex and exit")
		verify      = fs.Bool("verify", false, "cross-check the count against the single-thread oracle (slow on large graphs)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return usage("unexpected arguments %q", fs.Args())
	}

	// Validate before anything reaches the engine: bad values would otherwise
	// surface as confusing failures (or silently normalize) deep in the run.
	if *workers < 1 {
		return usage("-workers must be >= 1, have %d", *workers)
	}
	if *maxSteps < 0 {
		return usage("-max-supersteps must be positive, have %d", *maxSteps)
	}
	explicitZeroSteps := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "max-supersteps" && *maxSteps == 0 {
			explicitZeroSteps = true
		}
	})
	if explicitZeroSteps {
		return usage("-max-supersteps must be positive (a run needs at least the initialization superstep)")
	}
	opts := psgl.NewOptions()
	switch *strategy {
	case "random":
		opts.Strategy = psgl.StrategyRandom
	case "roulette":
		opts.Strategy = psgl.StrategyRoulette
	case "wa":
		opts.Strategy = psgl.StrategyWorkloadAware
	default:
		return usage("unknown strategy %q (want random, roulette, or wa)", *strategy)
	}
	if *alpha <= 0 || *alpha > 1 {
		return usage("-alpha must be in (0, 1], have %g", *alpha)
	}
	if *retries < 1 {
		return usage("-exchange-retries must be >= 1, have %d", *retries)
	}
	if *maxRecover < 0 {
		return usage("-max-recoveries must be >= 0, have %d", *maxRecover)
	}
	if *resume && *ckptDir == "" {
		return usage("-resume requires -checkpoint-dir")
	}
	if *maxRecover > 0 && *ckptDir == "" {
		return usage("-max-recoveries requires -checkpoint-dir")
	}

	g, err := loadGraph(*graphPath, *genSpec, *seed)
	if err != nil {
		return usage("%v", err)
	}
	censusK, isCensus, err := psgl.ParseCensus(*patternName)
	if err != nil {
		return usage("%v", err)
	}
	var p *psgl.Pattern
	if isCensus {
		if *explain {
			return usage("-explain applies to pattern listing, not census queries")
		}
	} else {
		p, err = psgl.ParsePattern(*patternName)
		if err != nil {
			return usage("%v", err)
		}
		if *explain {
			explainInitialVertex(stdout, g, p)
			return 0
		}
	}

	opts.Workers = *workers
	opts.Alpha = *alpha
	opts.InitialVertex = *initial
	opts.DisableEdgeIndex = *noIndex
	opts.Seed = *seed
	opts.MaxIntermediate = *budget
	opts.MaxSupersteps = *maxSteps
	if *tcp {
		opts.Exchange = psgl.NewTCPExchange()
	}
	opts.AsyncExchange = *async
	opts.CompressFrames = *compress
	if *async && *stepTimeout > 0 {
		return usage("-step-timeout applies to barriered supersteps; async mode has none (use -timeout to bound the run)")
	}
	opts.StepTimeout = *stepTimeout
	opts.Retry = psgl.RetryPolicy{MaxAttempts: *retries}
	opts.MaxRecoveries = *maxRecover
	if *ckptDir != "" {
		store, err := psgl.NewFileCheckpointStore(*ckptDir)
		if err != nil {
			return fail("%v", err)
		}
		every := *ckptEvery
		if every <= 0 {
			every = 1
		}
		opts.CheckpointEvery = every
		opts.CheckpointStore = store
		if *resume {
			opts.ResumeFrom = store
		}
	}

	// Observability: a JSONL trace file, the debug server, or both share one
	// observer. Without either flag no observer is attached at all.
	var observer *psgl.Observer
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return fail("%v", err)
		}
		defer traceFile.Close()
		observer = psgl.NewObserver(psgl.NewJSONLSink(traceFile))
	} else if *pprofAddr != "" {
		observer = psgl.NewObserver(nil)
	}
	if *pprofAddr != "" {
		addr, err := psgl.ServeDebug(*pprofAddr, observer)
		if err != nil {
			return fail("pprof server: %v", err)
		}
		fmt.Fprintf(stderr, "debug server on http://%s/debug/pprof/ (also /debug/vars, /debug/obs)\n", addr)
	}
	opts.Observer = observer

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if isCensus {
		return runCensus(ctx, g, censusK, *workers, observer, *verify, *showStats, stdout, stderr)
	}

	fmt.Fprintf(stderr, "graph: %d vertices, %d edges; pattern: %s\n",
		g.NumVertices(), g.NumEdges(), p)
	start := time.Now()
	res, err := psgl.ListContext(ctx, g, p, opts)
	if observer != nil {
		observer.WriteReport(stderr)
	}
	if err != nil {
		if ctx.Err() != nil && *ckptDir != "" {
			return fail("%v (run state checkpointed in %s after %v; rerun with -resume to continue)",
				err, *ckptDir, time.Since(start).Round(time.Millisecond))
		}
		return fail("%v", err)
	}
	fmt.Fprintf(stdout, "%d\n", res.Count)
	if *verify {
		if want := psgl.CountCentralized(g, p); want != res.Count {
			return fail("VERIFICATION FAILED: psgl=%d oracle=%d", res.Count, want)
		}
		fmt.Fprintln(stderr, "verified against the single-thread oracle")
	}
	if *showStats {
		s := res.Stats
		fmt.Fprintf(stderr, "supersteps:       %d\n", s.Supersteps)
		fmt.Fprintf(stderr, "initial vertex:   v%d\n", s.InitialVertex+1)
		fmt.Fprintf(stderr, "gpsi generated:   %d\n", s.GpsiGenerated)
		fmt.Fprintf(stderr, "pruned: degree=%d order=%d index=%d injective=%d verify=%d\n",
			s.PrunedByDegree, s.PrunedByOrder, s.PrunedByIndex, s.PrunedByInjectivity, s.PrunedByVerify)
		fmt.Fprintf(stderr, "index queries:    %d (index %d bytes)\n", s.EdgeIndexQueries, s.EdgeIndexBytes)
		fmt.Fprintf(stderr, "load makespan:    %.0f units\n", s.LoadMakespan)
		if s.Recoveries > 0 {
			fmt.Fprintf(stderr, "recoveries:       %d checkpoint restores\n", s.Recoveries)
		}
		fmt.Fprintf(stderr, "wall time:        %v\n", s.WallTime)
	}
	return 0
}

// runCensus runs the census(k) batch mode: the ESU engine enumerates every
// connected k-vertex subgraph and the motif histogram is printed as indented
// JSON on stdout (the classes carry their shapes in the DSL's edges(...) form
// so the output is self-describing).
func runCensus(ctx context.Context, g *psgl.Graph, k, workers int, observer *psgl.Observer, verify, showStats bool, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl: "+format+"\n", a...)
		return 1
	}
	fmt.Fprintf(stderr, "graph: %d vertices, %d edges; census: k=%d\n",
		g.NumVertices(), g.NumEdges(), k)
	res, err := psgl.CensusContext(ctx, g, k, psgl.CensusOptions{Workers: workers, Observer: observer})
	if observer != nil {
		observer.WriteReport(stderr)
	}
	if err != nil {
		return fail("%v", err)
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fail("%v", err)
	}
	stdout.Write(append(out, '\n'))
	if verify {
		if err := psgl.VerifyCensus(g, res); err != nil {
			return fail("VERIFICATION FAILED: %v", err)
		}
		fmt.Fprintln(stderr, "verified against the single-thread census oracle")
	}
	if showStats {
		fmt.Fprintf(stderr, "subgraphs:        %d in %d classes\n", res.Subgraphs, len(res.Classes))
		fmt.Fprintf(stderr, "canon cache:      %d hits / %d misses (%.4f hit rate)\n",
			res.CacheHits, res.CacheMisses, res.CacheHitRate())
		fmt.Fprintf(stderr, "workers:          %d\n", res.Workers)
		fmt.Fprintf(stderr, "wall time:        %v\n", res.Wall)
	}
	return 0
}

// explainInitialVertex prints the Algorithm 4 cost estimate for every
// possible initial pattern vertex and the rule-based recommendation.
func explainInitialVertex(w io.Writer, g *psgl.Graph, p *psgl.Pattern) {
	broken := p.BreakAutomorphisms()
	dist := stats.FromHistogram(g.DegreeHistogram())
	fmt.Fprintf(w, "initial-vertex cost estimates for %s (data graph: %d vertices, %d edges)\n",
		broken, g.NumVertices(), g.NumEdges())
	best := core.SelectInitialVertex(broken, dist)
	for v := 0; v < broken.N(); v++ {
		marker := " "
		if v == best {
			marker = "*"
		}
		fmt.Fprintf(w, "%s v%d: estimated Gpsi volume %.3g\n",
			marker, v+1, core.EstimateInitialVertexCost(broken, dist, v))
	}
	if broken.IsCycle() || broken.IsClique() {
		fmt.Fprintf(w, "pattern is a %s: Theorem 5 rule applies, lowest-rank vertex v%d is optimal\n",
			kindOf(broken), broken.LowestRankVertex()+1)
	}
}

func kindOf(p *psgl.Pattern) string {
	if p.IsClique() {
		return "clique"
	}
	return "cycle"
}

func loadGraph(path, spec string, seed int64) (*psgl.Graph, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("pass either -graph or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return psgl.LoadEdgeList(f)
	case spec != "":
		return psgl.GenerateFromSpec(spec, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -gen is required")
	}
}
