// Command psgl-worker runs one remote worker of a psgl-server worker plane:
// it loads the same data graph as the coordinator (checked by fingerprint at
// join), registers, heartbeats, and executes the queries the coordinator
// dispatches to its /exec endpoint.
//
// Usage:
//
//	psgl-server -gen "er:1000:5000" -worker-plane -addr 127.0.0.1:8080 &
//	psgl-worker -gen "er:1000:5000" -coordinator http://127.0.0.1:8080 -id w1 &
//	psgl-worker -gen "er:1000:5000" -coordinator http://127.0.0.1:8080 -id w2 &
//	curl 'localhost:8080/query?pattern=triangle&count_only=1'
//
// The graph flags (-graph/-gen/-seed) must match the coordinator's exactly;
// a worker resident over a different graph is rejected permanently at join.
// SIGTERM or SIGINT leaves the registry gracefully, drains in-flight
// queries, and exits 0. A killed worker (no goodbye) is evicted by the
// coordinator after its heartbeat misses accumulate.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psgl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// testWorkerReady, when non-nil, observes the worker's bound /exec address —
// a test seam for in-process CLI tests.
var testWorkerReady func(addr string)

// run is main with its environment made explicit: 0 on clean shutdown, 2 on
// usage errors, 1 on runtime failures (join rejected, coordinator gone).
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl-worker: "+format+"\n", a...)
		return 1
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "psgl-worker: "+format+"\n", a...)
		return 2
	}

	fs := flag.NewFlagSet("psgl-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath   = fs.String("graph", "", "edge-list file to load (must match the coordinator's graph)")
		genSpec     = fs.String("gen", "", `generator spec, e.g. "er:N:M" (must match the coordinator's)`)
		seed        = fs.Int64("seed", 1, "seed for generation and partitioning (must match the coordinator's)")
		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8080 (required)")
		id          = fs.String("id", "", "stable worker name; restarts keep the name and get a new generation (required)")
		addr        = fs.String("addr", "127.0.0.1:0", "listen address for the /exec endpoint")
		workers     = fs.Int("workers", 4, "BSP workers per query (>= 1)")
		maxInFlight = fs.Int("max-inflight", 2, "queries executing concurrently (>= 1)")
		async       = fs.Bool("async", false, "execute dispatched queries on the pipelined async BSP exchange (counts identical to strict mode)")
		compress    = fs.Bool("compress", false, "prefix-compress Gpsi frames on dispatched queries (counts identical to flat mode)")
		drainT      = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight queries on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return usage("unexpected arguments %q", fs.Args())
	}
	if *coordinator == "" {
		return usage("-coordinator is required")
	}
	if *id == "" {
		return usage("-id is required")
	}
	if *workers < 1 {
		return usage("-workers must be >= 1, have %d", *workers)
	}
	if *maxInFlight < 1 {
		return usage("-max-inflight must be >= 1, have %d", *maxInFlight)
	}

	var g *psgl.Graph
	var err error
	switch {
	case *graphPath != "" && *genSpec != "":
		return usage("pass either -graph or -gen, not both")
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			return usage("%v", err)
		}
		g, err = psgl.LoadEdgeList(f)
		f.Close()
		if err != nil {
			return usage("loading %s: %v", *graphPath, err)
		}
	case *genSpec != "":
		g, err = psgl.GenerateFromSpec(*genSpec, *seed)
		if err != nil {
			return usage("%v", err)
		}
	default:
		return usage("one of -graph or -gen is required")
	}

	w, err := psgl.StartRemoteWorker(g, psgl.RemoteWorkerConfig{
		ID:          *id,
		Coordinator: *coordinator,
		ListenAddr:  *addr,
		Serve: psgl.ServerConfig{
			Workers:        *workers,
			Seed:           *seed,
			MaxInFlight:    *maxInFlight,
			AsyncExchange:  *async,
			CompressFrames: *compress,
		},
	})
	if err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "psgl-worker: %s (gen %d) serving %d vertices on %s for %s\n",
		*id, w.Gen(), g.NumVertices(), w.Addr(), *coordinator)
	if testWorkerReady != nil {
		testWorkerReady(w.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(stderr, "psgl-worker: shutdown signal; leaving registry and draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := w.Stop(dctx); err != nil {
		return fail("stop: %v", err)
	}
	fmt.Fprintln(stderr, "psgl-worker: stopped, exiting")
	return 0
}
