package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"psgl"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestWorkerFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"no graph source", []string{"-coordinator", "http://x", "-id", "w"}, "one of -graph or -gen is required"},
		{"no coordinator", []string{"-gen", "er:50:100", "-id", "w"}, "-coordinator is required"},
		{"no id", []string{"-gen", "er:50:100", "-coordinator", "http://x"}, "-id is required"},
		{"zero workers", []string{"-gen", "er:50:100", "-coordinator", "http://x", "-id", "w", "-workers", "0"}, "-workers must be >= 1"},
		{"trailing args", []string{"-gen", "er:50:100", "-coordinator", "http://x", "-id", "w", "extra"}, "unexpected arguments"},
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v: exit 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("args %v: stderr %q, want it to contain %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

// TestWorkerJoinServeSigtermLeave is the worker binary's end-to-end test: an
// in-process coordinator with a worker plane, the worker booted through
// run(), a query answered through the coordinator by this worker, then
// SIGTERM — the worker must leave the registry gracefully and exit 0.
func TestWorkerJoinServeSigtermLeave(t *testing.T) {
	const spec = "chunglu:400:1600:1.8"
	g, err := psgl.GenerateFromSpec(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := psgl.NewServer(g, psgl.ServerConfig{Plane: &psgl.PlaneConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	readyCh := make(chan string, 1)
	testWorkerReady = func(addr string) { readyCh <- addr }
	defer func() { testWorkerReady = nil }()

	var wg sync.WaitGroup
	var code int
	var stderr bytes.Buffer
	wg.Add(1)
	go func() {
		defer wg.Done()
		var stdout bytes.Buffer
		code = run([]string{
			"-gen", spec, "-seed", "1",
			"-coordinator", ts.URL,
			"-id", "w1", "-workers", "2",
		}, &stdout, &stderr)
	}()
	select {
	case <-readyCh:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never became ready")
	}

	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=1")
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Count int64 `json:"count"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query via coordinator: status %d, err %v", resp.StatusCode, err)
	}
	if got := resp.Header.Get("X-PSGL-Worker"); got != "w1" {
		t.Fatalf("answered by %q, want w1", got)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not stop after SIGTERM")
	}
	if code != 0 {
		t.Fatalf("exit %d after SIGTERM, want 0; stderr:\n%s", code, stderr.String())
	}
	st := coord.Stats()
	if st.Plane == nil || st.Plane.Registry.Leaves != 1 {
		t.Fatalf("worker did not leave gracefully: %+v", st.Plane)
	}
	if st.Plane.Alive != 0 {
		t.Fatalf("alive = %d after leave, want 0", st.Plane.Alive)
	}
}

// TestWorkerGraphMismatchFailsFast: a worker loaded with a different graph
// must be rejected at join and exit non-zero with the mismatch explained.
func TestWorkerGraphMismatchFailsFast(t *testing.T) {
	g, err := psgl.GenerateFromSpec("er:100:400", 1)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := psgl.NewServer(g, psgl.ServerConfig{Plane: &psgl.PlaneConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	code, _, stderr := runCLI(t,
		"-gen", "er:100:400", "-seed", "2", // different seed => different graph
		"-coordinator", ts.URL, "-id", "wz")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "fingerprint mismatch") {
		t.Fatalf("stderr %q, want fingerprint mismatch", stderr)
	}
}
