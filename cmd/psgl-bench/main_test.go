package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRejectsUnknownExperiment(t *testing.T) {
	code, _, stderr := runCLI(t, "fig99")
	if code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(stderr, `unknown experiment "fig99"`) {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestRejectsMissingExperiment(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code == 0 {
		t.Fatal("missing experiment accepted")
	}
	if !strings.Contains(stderr, "usage: psgl-bench") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestRejectsExtraArguments(t *testing.T) {
	code, _, stderr := runCLI(t, "fig3", "fig5")
	if code == 0 {
		t.Fatal("extra arguments accepted")
	}
	if !strings.Contains(stderr, "usage: psgl-bench") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestRejectsUnknownFlag(t *testing.T) {
	code, _, stderr := runCLI(t, "-workers", "-3", "fig3")
	if code == 0 {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr, "flag provided but not defined") {
		t.Fatalf("stderr = %q", stderr)
	}
}
