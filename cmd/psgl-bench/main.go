// Command psgl-bench regenerates the tables and figures of the paper's
// evaluation (Section 7) on the synthetic dataset analogues.
//
// Usage:
//
//	psgl-bench [flags] <experiment>
//
// where <experiment> is one of: datasets, property1, fig3, fig5, fig6,
// table2, fig7, table3, table4, fig8, makespan, hotpath, serve, chaos,
// census, update, or all.
//
// `psgl-bench hotpath` additionally writes the machine-readable baseline to
// BENCH_hotpath.json in the current directory; `psgl-bench serve` does the
// same for the resident query service (qps and latency percentiles at
// increasing client concurrency) into BENCH_serve.json. `psgl-bench chaos`
// runs the deterministic fault harness — seeded kill/drop/delay/partition
// and checkpoint-corruption schedules over both exchanges — verifies every
// chaos count bit-identical against a clean run, and writes
// BENCH_chaos.json (recoveries, retries, restarts per schedule).
// `psgl-bench census` sweeps the ESU motif-census engine (k=3,4 over two
// power-law graphs, single-worker cold cache then all-core warm cache) and
// writes BENCH_census.json (subgraph throughput and canon-cache hit rates).
// `psgl-bench update` streams small mutation batches through the dynamic-graph
// path, verifies the maintenance identity per batch, and writes
// BENCH_update.json (updates/sec and the delta-vs-full-rerun speedup).
//
// Observability: `psgl-bench -trace out.jsonl <experiment>` attaches an
// observer to every PSgL run the experiment performs, writes the JSONL event
// trace to out.jsonl, and prints the end-of-run report; -pprof-addr serves
// net/http/pprof, expvar counters (/debug/vars), and the live observer
// snapshot (/debug/obs) while the experiment runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"psgl"
	"psgl/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so CLI behavior — flag and
// experiment-name validation above all — is testable in-process. Exit codes:
// 0 on success, 2 on usage errors, 1 on runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psgl-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath = fs.String("trace", "", "write a JSONL trace of engine events to this file and print the observability report")
		pprofAddr = fs.String("pprof-addr", "", `serve net/http/pprof + expvar counters on this address (e.g. "localhost:6060")`)
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: psgl-bench [flags] <datasets|property1|fig3|fig5|fig6|table2|fig7|table3|table4|fig8|makespan|hotpath|serve|chaos|census|update|all>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	name := fs.Arg(0)
	fn, err := experiments.ByName(name)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var observer *psgl.Observer
	if *tracePath != "" {
		traceFile, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer traceFile.Close()
		observer = psgl.NewObserver(psgl.NewJSONLSink(traceFile))
	} else if *pprofAddr != "" {
		observer = psgl.NewObserver(nil)
	}
	if *pprofAddr != "" {
		addr, err := psgl.ServeDebug(*pprofAddr, observer)
		if err != nil {
			fmt.Fprintf(stderr, "pprof server: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "debug server on http://%s/debug/pprof/ (also /debug/vars, /debug/obs)\n", addr)
	}
	experiments.Observer = observer

	start := time.Now()
	fmt.Fprint(stdout, fn())
	if observer != nil {
		observer.WriteReport(stderr)
	}
	if name == "hotpath" {
		data, err := experiments.HotpathJSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile("BENCH_hotpath.json", data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "baseline written to BENCH_hotpath.json")
	}
	if name == "serve" {
		data, err := experiments.ServeJSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile("BENCH_serve.json", data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "baseline written to BENCH_serve.json")
	}
	if name == "chaos" {
		data, err := experiments.ChaosJSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile("BENCH_chaos.json", data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "baseline written to BENCH_chaos.json")
	}
	if name == "census" {
		data, err := experiments.CensusJSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile("BENCH_census.json", data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "baseline written to BENCH_census.json")
	}
	if name == "update" {
		data, err := experiments.UpdateJSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile("BENCH_update.json", data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "baseline written to BENCH_update.json")
	}
	fmt.Fprintf(stdout, "(experiment %s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
	return 0
}
