// Command psgl-bench regenerates the tables and figures of the paper's
// evaluation (Section 7) on the synthetic dataset analogues.
//
// Usage:
//
//	psgl-bench <experiment>
//
// where <experiment> is one of: datasets, property1, fig3, fig5, fig6,
// table2, fig7, table3, table4, fig8, makespan, hotpath, or all.
//
// `psgl-bench hotpath` additionally writes the machine-readable baseline to
// BENCH_hotpath.json in the current directory.
package main

import (
	"fmt"
	"os"
	"time"

	"psgl/internal/experiments"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: psgl-bench <datasets|property1|fig3|fig5|fig6|table2|fig7|table3|table4|fig8|makespan|hotpath|all>")
		os.Exit(2)
	}
	fn, err := experiments.ByName(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	fmt.Print(fn())
	if os.Args[1] == "hotpath" {
		data, err := experiments.HotpathJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_hotpath.json", data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("baseline written to BENCH_hotpath.json")
	}
	fmt.Printf("(experiment %s completed in %s)\n", os.Args[1], time.Since(start).Round(time.Millisecond))
}
