// Strategies: a miniature of the paper's Figures 3 and 5 — compare the
// partial-subgraph-instance distribution strategies on a skewed graph and
// watch the workload-aware rule (α = 0.5) balance the workers.
//
// Run with: go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"psgl"
)

func main() {
	// A heavily skewed graph: the regime where strategy choice matters.
	g := psgl.GenerateChungLu(20_000, 50_000, 1.2, 3)
	fmt.Printf("data graph: %d vertices, %d edges, max degree %d (heavily skewed)\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	configs := []struct {
		name     string
		strategy psgl.Strategy
		alpha    float64
	}{
		{"Random", psgl.StrategyRandom, 0},
		{"Roulette", psgl.StrategyRoulette, 0},
		{"WA alpha=1.0", psgl.StrategyWorkloadAware, 1},
		{"WA alpha~0", psgl.StrategyWorkloadAware, 0.001},
		{"WA alpha=0.5", psgl.StrategyWorkloadAware, 0.5},
	}

	fmt.Printf("%-14s %14s %14s %12s %10s\n",
		"strategy", "load makespan", "max worker", "mean worker", "imbalance")
	for _, cfg := range configs {
		opts := psgl.NewOptions()
		opts.Workers = 32
		opts.Strategy = cfg.strategy
		opts.Alpha = cfg.alpha
		res, err := psgl.List(g, psgl.Square(), opts)
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		var max, sum float64
		for _, l := range res.Stats.LoadUnits {
			sum += l
			if l > max {
				max = l
			}
		}
		mean := sum / float64(len(res.Stats.LoadUnits))
		fmt.Printf("%-14s %14.0f %14.0f %12.0f %9.2fx\n",
			cfg.name, res.Stats.LoadMakespan, max, mean, max/mean)
	}
	fmt.Println("\nload makespan = Σ over supersteps of the slowest worker's load (Equation 3).")
	fmt.Println("On skewed graphs the workload-aware rule should clearly beat Random;")
	fmt.Println("alpha=0.5 trades off the balance-first (alpha=1) and greedy (alpha~0) extremes.")
}
