// Quickstart: generate a power-law graph, list a pattern in it with PSgL,
// and inspect the run statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"psgl"
)

func main() {
	// A 20k-vertex power-law graph (γ = 2.1), roughly web-graph shaped.
	g := psgl.GenerateChungLu(20_000, 80_000, 2.1, 42)
	fmt.Printf("data graph: %d vertices, %d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Default options: 4 workers, workload-aware distribution (α = 0.5),
	// bloom edge index, automatic initial-pattern-vertex selection.
	opts := psgl.NewOptions()
	opts.Workers = 8

	for _, p := range []*psgl.Pattern{psgl.Triangle(), psgl.Square(), psgl.Diamond()} {
		res, err := psgl.List(g, p, opts)
		if err != nil {
			log.Fatalf("listing %s: %v", p.Name(), err)
		}
		fmt.Printf("%-10s %12d instances  (%d supersteps, %d partial instances, %v)\n",
			p.Name(), res.Count, res.Stats.Supersteps, res.Stats.GpsiGenerated,
			res.Stats.WallTime.Round(1_000_000))
	}

	// Custom patterns work too; symmetry breaking is automatic.
	paw, err := psgl.NewPattern("paw", 4, // triangle with a pendant edge
		[][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	n, err := psgl.Count(g, paw, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12d instances\n", paw.Name(), n)
}
