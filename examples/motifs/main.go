// Motif census of a social network — the workload the paper's introduction
// motivates: triangle counts give the clustering coefficient, and the
// relative frequencies of small motifs characterize the network's structure
// (Milo et al., Science 2002).
//
// The example builds a preferential-attachment "social" graph, counts the
// 3- and 4-vertex motifs with PSgL, and derives the global clustering
// coefficient plus a motif profile normalized against an Erdős–Rényi null
// model of the same size.
//
// Run with: go run ./examples/motifs
package main

import (
	"fmt"
	"log"

	"psgl"
)

func main() {
	social := psgl.GenerateBarabasiAlbert(20_000, 6, 7)
	null := psgl.GenerateErdosRenyi(social.NumVertices(), social.NumEdges(), 7)

	fmt.Printf("social graph: %d vertices, %d edges (BA preferential attachment)\n",
		social.NumVertices(), social.NumEdges())
	fmt.Printf("null model:   Erdős–Rényi with the same size\n\n")

	opts := psgl.NewOptions()
	opts.Workers = 8

	motifs := []*psgl.Pattern{
		psgl.Triangle(), psgl.Path(3), psgl.Square(),
		psgl.Diamond(), psgl.FourClique(), psgl.Star(3),
	}
	fmt.Printf("%-10s %14s %14s %10s\n", "motif", "social", "null(ER)", "ratio")
	counts := map[string]int64{}
	for _, p := range motifs {
		cs, err := psgl.Count(social, p, opts)
		if err != nil {
			log.Fatalf("%s on social: %v", p.Name(), err)
		}
		cn, err := psgl.Count(null, p, opts)
		if err != nil {
			log.Fatalf("%s on null: %v", p.Name(), err)
		}
		ratio := "inf"
		if cn > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(cs)/float64(cn))
		}
		fmt.Printf("%-10s %14d %14d %10s\n", p.Name(), cs, cn, ratio)
		counts[p.Name()] = cs
	}

	// Global clustering coefficient = 3 * triangles / wedges, where the
	// wedge count is exactly the path3 motif count.
	if wedges := counts["path3"]; wedges > 0 {
		cc := 3 * float64(counts["triangle"]) / float64(wedges)
		fmt.Printf("\nglobal clustering coefficient: %.4f\n", cc)
	}
}
