// Distributed: run PSgL with the loopback-TCP message exchange, the
// single-machine analogue of the paper's cluster deployment — every
// inter-worker partial subgraph instance is gob-encoded and round-trips the
// network stack. The instance counts must match the in-process exchange
// exactly; the wall-time difference is the serialization + transport cost.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"psgl"
)

func main() {
	g := psgl.GenerateChungLu(10_000, 40_000, 1.8, 5)
	fmt.Printf("data graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	run := func(label string, tcp bool) int64 {
		opts := psgl.NewOptions()
		opts.Workers = 4
		if tcp {
			opts.Exchange = psgl.NewTCPExchange()
		}
		res, err := psgl.List(g, psgl.Square(), opts)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-22s count=%d  messages=%d  wall=%v\n",
			label, res.Count, res.Stats.GpsiGenerated, res.Stats.WallTime.Round(1_000_000))
		return res.Count
	}

	local := run("in-process exchange", false)
	tcp := run("loopback TCP exchange", true)
	if local != tcp {
		log.Fatalf("counts diverged: local=%d tcp=%d", local, tcp)
	}
	fmt.Println("\ncounts agree across transports.")
}
