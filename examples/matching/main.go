// Matching: labeled subgraph matching — the generalization the paper frames
// subgraph listing as a special case of (Section 2: "subgraph listing can be
// viewed as a special case of subgraph matching where all the vertices have
// the same attributes").
//
// The example builds a typed interaction graph with three vertex kinds —
// users, products, tags — and matches typed patterns in it: co-purchase
// wedges (user–product–user), products bridging two tags, and the labeled
// triangle user–product–tag. Labels restrict candidates and automorphism
// breaking automatically adapts (a fully typed triangle has no symmetry
// left to break).
//
// Run with: go run ./examples/matching
package main

import (
	"fmt"
	"log"
	"math/rand"

	"psgl"
)

const (
	labelUser    = 0
	labelProduct = 1
	labelTag     = 2
)

func main() {
	g, labels := buildTypedGraph(8000, 1200, 150, 42)
	counts := map[int32]int{}
	for _, l := range labels {
		counts[l]++
	}
	fmt.Printf("typed graph: %d vertices (%d users, %d products, %d tags), %d edges\n\n",
		g.NumVertices(), counts[labelUser], counts[labelProduct], counts[labelTag], g.NumEdges())

	opts := psgl.NewOptions()
	opts.Workers = 8
	opts.DataLabels = labels

	queries := []struct {
		describe string
		pattern  func() (*psgl.Pattern, error)
	}{
		{
			"co-purchase wedge (user–product–user)",
			func() (*psgl.Pattern, error) {
				p, err := psgl.NewPattern("copurchase", 3, [][2]int{{0, 1}, {1, 2}})
				if err != nil {
					return nil, err
				}
				return p.WithLabels([]int{labelUser, labelProduct, labelUser})
			},
		},
		{
			"tag bridge (tag–product–tag)",
			func() (*psgl.Pattern, error) {
				p, err := psgl.NewPattern("tagbridge", 3, [][2]int{{0, 1}, {1, 2}})
				if err != nil {
					return nil, err
				}
				return p.WithLabels([]int{labelTag, labelProduct, labelTag})
			},
		},
		{
			"typed triangle (user–product–tag)",
			func() (*psgl.Pattern, error) {
				p, err := psgl.NewPattern("upt", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
				if err != nil {
					return nil, err
				}
				return p.WithLabels([]int{labelUser, labelProduct, labelTag})
			},
		},
		{
			"diamond of two users sharing two products",
			func() (*psgl.Pattern, error) {
				p, err := psgl.NewPattern("shared2", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
				if err != nil {
					return nil, err
				}
				return p.WithLabels([]int{labelUser, labelProduct, labelUser, labelProduct})
			},
		},
	}

	for _, q := range queries {
		p, err := q.pattern()
		if err != nil {
			log.Fatal(err)
		}
		n, err := psgl.Count(g, p, opts)
		if err != nil {
			log.Fatalf("%s: %v", q.describe, err)
		}
		// Cross-check against the labeled oracle.
		if want := psgl.CountCentralizedLabeled(g, p, labels); want != n {
			log.Fatalf("%s: psgl=%d oracle=%d", q.describe, n, want)
		}
		fmt.Printf("%-45s %12d matches (|Aut| after labels: %d)\n",
			q.describe, n, p.NumAutomorphisms())
	}
}

// buildTypedGraph wires users to products (purchases), products to tags
// (categorization), and users to users (friendships), with skewed product
// popularity.
func buildTypedGraph(users, products, tags int, seed int64) (*psgl.Graph, []int32) {
	rng := rand.New(rand.NewSource(seed))
	n := users + products + tags
	labels := make([]int32, n)
	productAt := func(i int) psgl.VertexID { return psgl.VertexID(users + i) }
	tagAt := func(i int) psgl.VertexID { return psgl.VertexID(users + products + i) }
	for i := 0; i < products; i++ {
		labels[productAt(i)] = labelProduct
	}
	for i := 0; i < tags; i++ {
		labels[tagAt(i)] = labelTag
	}
	b := psgl.NewGraphBuilder(n)
	// Purchases: each user buys ~5 products, popularity ∝ 1/rank.
	pickProduct := func() psgl.VertexID {
		return productAt(int(float64(products) * rng.Float64() * rng.Float64()))
	}
	for u := 0; u < users; u++ {
		for i := 0; i < 5; i++ {
			b.AddEdge(psgl.VertexID(u), pickProduct())
		}
	}
	// Categorization: each product carries 2 tags.
	for p := 0; p < products; p++ {
		for i := 0; i < 2; i++ {
			b.AddEdge(productAt(p), tagAt(rng.Intn(tags)))
		}
	}
	// Friendships: sparse user-user edges; users also follow tags.
	for i := 0; i < 2*users; i++ {
		b.AddEdge(psgl.VertexID(rng.Intn(users)), psgl.VertexID(rng.Intn(users)))
	}
	for u := 0; u < users; u++ {
		b.AddEdge(psgl.VertexID(u), tagAt(rng.Intn(tags)))
	}
	return b.Build(), labels
}
