package psgl_test

// One benchmark per table and figure of the paper's evaluation (Section 7),
// plus ablation benches for the design choices DESIGN.md calls out. The
// macro benchmarks regenerate the full experiment and log its report; run
// them with a bounded count, e.g.
//
//	go test -bench=. -benchtime=1x -benchmem
//
// The same reports are available interactively via cmd/psgl-bench.

import (
	"testing"

	"psgl"
	"psgl/internal/core"
	"psgl/internal/datasets"
	"psgl/internal/experiments"
	"psgl/internal/pattern"
)

func benchExperiment(b *testing.B, fn func() string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out := fn()
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset metadata).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, experiments.Datasets) }

// BenchmarkProperty1NbNs regenerates the Section 3 nb/ns polarization check.
func BenchmarkProperty1NbNs(b *testing.B) { benchExperiment(b, experiments.Property1) }

// BenchmarkFigure3Strategies regenerates Figure 3 (distribution strategies).
func BenchmarkFigure3Strategies(b *testing.B) { benchExperiment(b, experiments.Figure3) }

// BenchmarkFigure5PerWorkerBalance regenerates Figure 5 (per-worker load).
func BenchmarkFigure5PerWorkerBalance(b *testing.B) { benchExperiment(b, experiments.Figure5) }

// BenchmarkFigure6InitialVertex regenerates Figure 6 (initial-vertex ratios).
func BenchmarkFigure6InitialVertex(b *testing.B) { benchExperiment(b, experiments.Figure6) }

// BenchmarkTable2EdgeIndex regenerates Table 2 (edge-index pruning ratios).
func BenchmarkTable2EdgeIndex(b *testing.B) { benchExperiment(b, experiments.Table2) }

// BenchmarkFigure7VsMapReduce regenerates Figure 7 (PSgL vs Afrati vs SGIA).
func BenchmarkFigure7VsMapReduce(b *testing.B) { benchExperiment(b, experiments.Figure7) }

// BenchmarkTable3TriangleListing regenerates Table 3 (triangles on the large
// graphs, four systems).
func BenchmarkTable3TriangleListing(b *testing.B) { benchExperiment(b, experiments.Table3) }

// BenchmarkTable4GeneralPatterns regenerates Table 4 (one-hop engine with
// fixed orders, OOM rows).
func BenchmarkTable4GeneralPatterns(b *testing.B) { benchExperiment(b, experiments.Table4) }

// BenchmarkFigure8Scalability regenerates Figure 8 (worker-count sweep).
func BenchmarkFigure8Scalability(b *testing.B) { benchExperiment(b, experiments.Figure8) }

// BenchmarkTheorem3Makespan regenerates the isolated distribution-problem
// study (Theorem 3, strategies vs OPT / lower bound).
func BenchmarkTheorem3Makespan(b *testing.B) { benchExperiment(b, experiments.Makespan) }

// --- Ablation benches (design choices from DESIGN.md §5) ---

// BenchmarkAblationAlpha sweeps the workload-aware penalty exponent.
func BenchmarkAblationAlpha(b *testing.B) {
	g := datasets.MustLoad("wikitalk")
	for _, alpha := range []float64{0.001, 0.25, 0.5, 0.75, 1.0} {
		b.Run(alphaName(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, pattern.PG2(), core.Options{Workers: 8, Alpha: alpha})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.LoadMakespan, "load-makespan")
			}
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 0.001:
		return "alpha~0"
	case 0.25:
		return "alpha0.25"
	case 0.5:
		return "alpha0.5"
	case 0.75:
		return "alpha0.75"
	default:
		return "alpha1.0"
	}
}

// BenchmarkAblationBloomBits varies the edge index size (bits per edge):
// fewer bits = more false positives = more pending verifications.
func BenchmarkAblationBloomBits(b *testing.B) {
	g := datasets.MustLoad("livejournal")
	for _, bits := range []int{2, 4, 8, 16} {
		b.Run(bitsName(bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, pattern.PG3(), core.Options{Workers: 8, BloomBitsPerEdge: bits})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.GpsiGenerated), "gpsi")
				b.ReportMetric(float64(res.Stats.EdgeIndexBytes), "index-bytes")
			}
		})
	}
}

func bitsName(bits int) string {
	switch bits {
	case 2:
		return "2bits"
	case 4:
		return "4bits"
	case 8:
		return "8bits"
	default:
		return "16bits"
	}
}

// BenchmarkAblationEdgeIndex toggles the edge index entirely (Table 2's axis,
// as a microbench on a mid-size input).
func BenchmarkAblationEdgeIndex(b *testing.B) {
	g := psgl.GenerateChungLu(5000, 20000, 1.8, 3)
	for _, disable := range []bool{false, true} {
		name := "with-index"
		if disable {
			name = "without-index"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, pattern.PG3(), core.Options{Workers: 4, DisableEdgeIndex: disable})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.GpsiGenerated), "gpsi")
			}
		})
	}
}

// BenchmarkAblationAutomorphism measures the cost of skipping symmetry
// breaking: every instance is found |Aut| times.
func BenchmarkAblationAutomorphism(b *testing.B) {
	g := psgl.GenerateChungLu(4000, 16000, 1.9, 4)
	for _, disable := range []bool{false, true} {
		name := "broken"
		if disable {
			name = "unbroken"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, pattern.PG1(), core.Options{Workers: 4, DisableAutomorphismBreaking: disable})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Count), "found")
			}
		})
	}
}

// BenchmarkAblationInitialVertex compares the automatic initial-vertex pick
// against the worst fixed choice on a skewed graph (Figure 6's axis as a
// microbench).
func BenchmarkAblationInitialVertex(b *testing.B) {
	g := psgl.GenerateChungLu(4000, 16000, 1.6, 5)
	p := pattern.PG2()
	for _, cfg := range []struct {
		name string
		v    int
	}{{"auto", -1}, {"worst-v4", 3}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, p, core.Options{Workers: 4, InitialVertex: cfg.v})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.LoadMakespan, "load-makespan")
			}
		})
	}
}

// BenchmarkAblationTransport compares the in-process exchange against
// loopback TCP (serialization + network stack cost per message).
func BenchmarkAblationTransport(b *testing.B) {
	g := psgl.GenerateChungLu(3000, 12000, 1.8, 6)
	for _, tcp := range []bool{false, true} {
		name := "local"
		if tcp {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := psgl.NewOptions()
				opts.Workers = 4
				if tcp {
					opts.Exchange = psgl.NewTCPExchange()
				}
				if _, err := psgl.List(g, psgl.Square(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLocalExpansion compares level-synchronous execution with
// the eager local-expansion mode (Section 4.2's "not the same pace" case).
func BenchmarkAblationLocalExpansion(b *testing.B) {
	g := psgl.GenerateChungLu(4000, 16000, 1.8, 8)
	for _, local := range []bool{false, true} {
		name := "level-sync"
		if local {
			name = "local-eager"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, pattern.PG2(), core.Options{Workers: 4, LocalExpansion: local})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.GpsiGenerated-res.Stats.InlineExpansions), "sent")
			}
		})
	}
}

// BenchmarkHotpath runs the engine's hot-path microbenchmarks: steady-state
// expansion and the exchange frame codec (wire vs the gob fallback). The same
// measurements back `psgl-bench hotpath` and the committed BENCH_hotpath.json
// baseline.
func BenchmarkHotpath(b *testing.B) {
	for _, hb := range core.HotpathBenchmarks() {
		b.Run(hb.Name, hb.Fn)
	}
}

// BenchmarkCensus regenerates the motif-census baseline (ESU engine at
// k=3/4, single-worker cold cache then all-core warm cache) behind
// `psgl-bench census` and the committed BENCH_census.json.
func BenchmarkCensus(b *testing.B) { benchExperiment(b, experiments.Census) }

// BenchmarkEngineTriangle is the plain PSgL micro benchmark (allocation
// profile of the hot path).
func BenchmarkEngineTriangle(b *testing.B) {
	g := psgl.GenerateChungLu(10000, 50000, 1.8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psgl.Count(g, psgl.Triangle(), psgl.NewOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
